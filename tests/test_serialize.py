"""Tests for JSON serialization of items and results."""

import json
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.items import CategoricalItem, IntervalItem, Itemset
from repro.core.serialize import (
    item_from_dict,
    item_to_dict,
    itemset_from_list,
    itemset_to_list,
    load_results,
    results_from_dict,
    save_results,
)


class TestItemRoundtrip:
    def test_categorical_single(self):
        item = CategoricalItem("c", "a")
        assert item_from_dict(item_to_dict(item)) == item

    def test_categorical_multi_with_label(self):
        item = CategoricalItem("c", {"a", "b"}, label="AB")
        back = item_from_dict(item_to_dict(item))
        assert back == item
        assert back.label == "AB"

    def test_interval_bounded(self):
        item = IntervalItem("x", 1.5, 2.5, closed_low=True)
        assert item_from_dict(item_to_dict(item)) == item

    def test_interval_infinite_bounds(self):
        item = IntervalItem("x", low=3.0)
        encoded = item_to_dict(item)
        json.dumps(encoded)  # stays valid JSON despite inf
        assert item_from_dict(encoded) == item

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            item_from_dict({"kind": "mystery"})

    def test_unknown_type(self):
        with pytest.raises(TypeError):
            item_to_dict(object())  # type: ignore[arg-type]

    @settings(max_examples=50, deadline=None)
    @given(
        low=st.one_of(st.just(-math.inf), st.floats(-1e6, 0, allow_nan=False)),
        high=st.one_of(st.just(math.inf), st.floats(1, 1e6, allow_nan=False)),
        cl=st.booleans(),
        ch=st.booleans(),
    )
    def test_interval_property_roundtrip(self, low, high, cl, ch):
        item = IntervalItem("x", low, high, cl, ch)
        encoded = json.loads(json.dumps(item_to_dict(item)))
        assert item_from_dict(encoded) == item


class TestItemsetRoundtrip:
    def test_mixed(self):
        itemset = Itemset(
            [CategoricalItem("c", "a"), IntervalItem("x", 0, 1)]
        )
        assert itemset_from_list(itemset_to_list(itemset)) == itemset

    def test_empty(self):
        assert itemset_from_list(itemset_to_list(Itemset())) == Itemset()


class TestResultsRoundtrip:
    @pytest.fixture
    def explored(self, pocket_data):
        from repro.core.hexplorer import HDivExplorer

        table, errors = pocket_data
        return HDivExplorer(0.1, tree_support=0.2).explore(table, errors)

    def test_file_roundtrip(self, explored, tmp_path):
        path = tmp_path / "results.json"
        save_results(explored, path)
        back = load_results(path)
        assert len(back) == len(explored)
        assert back.global_mean == pytest.approx(explored.global_mean)
        assert back.itemsets() == explored.itemsets()
        a = explored.top_k(3)
        b = back.top_k(3)
        for ra, rb in zip(a, b):
            assert ra.itemset == rb.itemset
            assert ra.divergence == pytest.approx(rb.divergence)
            assert ra.count == rb.count

    def test_file_is_plain_json(self, explored, tmp_path):
        path = tmp_path / "results.json"
        save_results(explored, path)
        data = json.loads(path.read_text())
        assert data["format"] == "repro.results.v1"

    def test_nan_t_survives(self, explored, tmp_path):
        import numpy as np

        from repro.core.divergence import OutcomeStats
        from repro.core.results import ResultSet, SubgroupResult

        r = SubgroupResult(
            Itemset([CategoricalItem("c", "x")]), 0.5, 10, float("nan"),
            float("nan"), float("nan"),
        )
        rs = ResultSet([r], OutcomeStats.from_outcomes(np.ones(10)), 1.0)
        path = tmp_path / "nan.json"
        save_results(rs, path)
        back = load_results(path)
        assert math.isnan(back[0].t)
        assert math.isnan(back[0].divergence)

    def test_unsupported_format_rejected(self):
        with pytest.raises(ValueError):
            results_from_dict({"format": "v999"})


@settings(max_examples=30, deadline=None)
@given(
    labels=st.lists(
        st.text(
            alphabet=st.characters(whitelist_categories=("L", "N")),
            min_size=1, max_size=8,
        ),
        min_size=1, max_size=4, unique=True,
    ),
    values=st.lists(
        st.floats(-1e9, 1e9, allow_nan=False), min_size=1, max_size=4
    ),
)
def test_property_mixed_itemset_roundtrip(labels, values):
    """Arbitrary categorical+interval itemsets survive JSON."""
    items = [CategoricalItem("c", set(labels))]
    for i, v in enumerate(sorted(set(values))):
        items.append(IntervalItem(f"x{i}", high=v))
    itemset = Itemset(items)
    encoded = json.loads(json.dumps(itemset_to_list(itemset)))
    assert itemset_from_list(encoded) == itemset
