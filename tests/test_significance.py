"""Tests for multiple-testing corrections."""

import math

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.core.divergence import OutcomeStats
from repro.core.items import CategoricalItem, Itemset
from repro.core.results import ResultSet, SubgroupResult
from repro.core.significance import (
    benjamini_hochberg,
    bonferroni,
    p_values_from_results,
    welch_p_value,
)


def result_with_t(name: str, t: float) -> SubgroupResult:
    return SubgroupResult(
        itemset=Itemset([CategoricalItem("c", name)]),
        support=0.1,
        count=100,
        mean=0.5,
        divergence=0.1,
        t=t,
    )


@pytest.fixture
def mixed_results():
    global_stats = OutcomeStats.from_outcomes(np.zeros(1000))
    results = [
        result_with_t("strong", 8.0),
        result_with_t("medium", 3.5),
        result_with_t("weak", 1.2),
        result_with_t("none", 0.1),
        result_with_t("undefined", float("nan")),
    ]
    return ResultSet(results, global_stats)


class TestWelchPValue:
    def test_matches_scipy_ttest(self, rng):
        a = rng.normal(0.5, 1.0, 60)
        b = rng.normal(0.0, 1.5, 400)
        ours = welch_p_value(
            OutcomeStats.from_outcomes(a), OutcomeStats.from_outcomes(b)
        )
        ref = scipy_stats.ttest_ind(a, b, equal_var=False)
        assert ours == pytest.approx(ref.pvalue, rel=1e-9)

    def test_nan_for_tiny_groups(self):
        tiny = OutcomeStats.from_outcomes(np.array([1.0]))
        big = OutcomeStats.from_outcomes(np.arange(10.0))
        assert math.isnan(welch_p_value(tiny, big))

    def test_zero_for_infinite_t(self):
        a = OutcomeStats.from_outcomes(np.full(5, 1.0))
        b = OutcomeStats.from_outcomes(np.full(5, 2.0))
        assert welch_p_value(a, b) == 0.0


class TestPValues:
    def test_monotone_in_t(self, mixed_results):
        ps = p_values_from_results(mixed_results)
        assert ps[0] < ps[1] < ps[2] < ps[3]

    def test_nan_propagates(self, mixed_results):
        ps = p_values_from_results(mixed_results)
        assert math.isnan(ps[4])


class TestBonferroni:
    def test_keeps_only_strong(self, mixed_results):
        kept = bonferroni(mixed_results, alpha=0.05)
        names = {str(r.itemset) for r in kept}
        assert "c=strong" in names
        assert "c=none" not in names
        assert "c=undefined" not in names

    def test_stricter_than_bh(self, mixed_results):
        bonf = {str(r.itemset) for r in bonferroni(mixed_results, 0.05)}
        bh = {str(r.itemset) for r in benjamini_hochberg(mixed_results, 0.05)}
        assert bonf <= bh

    def test_empty_results(self):
        empty = ResultSet([], OutcomeStats.empty())
        assert bonferroni(empty) == []

    def test_alpha_validation(self, mixed_results):
        with pytest.raises(ValueError):
            bonferroni(mixed_results, alpha=0.0)


class TestBenjaminiHochberg:
    def test_keeps_strong_drops_none(self, mixed_results):
        kept = benjamini_hochberg(mixed_results, alpha=0.05)
        names = {str(r.itemset) for r in kept}
        assert "c=strong" in names and "c=medium" in names
        assert "c=none" not in names

    def test_nan_never_selected(self, mixed_results):
        kept = benjamini_hochberg(mixed_results, alpha=0.99)
        assert all(not math.isnan(r.t) for r in kept)

    def test_monotone_in_alpha(self, mixed_results):
        strict = {str(r.itemset) for r in benjamini_hochberg(mixed_results, 0.001)}
        loose = {str(r.itemset) for r in benjamini_hochberg(mixed_results, 0.2)}
        assert strict <= loose

    def test_alpha_validation(self, mixed_results):
        with pytest.raises(ValueError):
            benjamini_hochberg(mixed_results, alpha=1.0)

    def test_all_nan_results(self):
        rs = ResultSet(
            [result_with_t("x", float("nan"))], OutcomeStats.empty()
        )
        assert benjamini_hochberg(rs) == []
