"""Tests for the unified ExploreConfig construction surface.

Every explorer and baseline must construct from a single
:class:`ExploreConfig`; historical keyword arguments keep working, with
renamed spellings (``support=``, ``st=``, ``max_level=``) emitting a
DeprecationWarning.
"""

import dataclasses

import pytest

from repro.baselines import ErrorTree, SliceFinder, SliceLine
from repro.core.config import ExploreConfig, resolve_config
from repro.core.explorer import DivExplorer
from repro.core.hexplorer import HDivExplorer


class TestExploreConfig:
    def test_defaults(self):
        cfg = ExploreConfig()
        assert cfg.min_support == 0.05
        assert cfg.tree_support == 0.1
        assert cfg.criterion == "divergence"
        assert cfg.backend == "fpgrowth"
        assert cfg.polarity is False
        assert cfg.max_length is None
        assert cfg.n_jobs == 1

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ExploreConfig().min_support = 0.2

    def test_replace_revalidates(self):
        cfg = ExploreConfig().replace(min_support=0.2, backend="bitset")
        assert cfg.min_support == 0.2 and cfg.backend == "bitset"
        with pytest.raises(ValueError):
            cfg.replace(min_support=0.0)

    @pytest.mark.parametrize(
        "bad",
        [
            {"min_support": 0.0},
            {"min_support": 1.5},
            {"tree_support": 0.0},
            {"criterion": "gini"},
            {"backend": "mystery"},
            {"max_length": 0},
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            ExploreConfig(**bad)


class TestResolveConfig:
    def test_kwargs_override_config(self):
        kwargs = {"min_support": 0.3}
        cfg = resolve_config(ExploreConfig(min_support=0.1), kwargs)
        assert cfg.min_support == 0.3
        assert kwargs == {}  # consumed

    def test_number_positional_is_min_support(self):
        assert resolve_config(0.2, {}).min_support == 0.2

    def test_defaults_apply_without_config(self):
        cfg = resolve_config(None, {}, defaults={"min_support": 0.01})
        assert cfg.min_support == 0.01

    def test_legacy_alias_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="'support' is deprecated"):
            cfg = resolve_config(None, {"support": 0.15})
        assert cfg.min_support == 0.15

    def test_canonical_beats_alias(self):
        with pytest.warns(DeprecationWarning):
            cfg = resolve_config(None, {"st": 0.5, "tree_support": 0.3})
        assert cfg.tree_support == 0.3

    def test_bad_config_type(self):
        with pytest.raises(TypeError):
            resolve_config("0.05", {})


class TestExplorerConstruction:
    def test_div_explorer_from_config(self):
        cfg = ExploreConfig(
            min_support=0.1, backend="bitset", polarity=True, n_jobs=2
        )
        ex = DivExplorer(cfg)
        assert ex.config == cfg
        assert ex.min_support == 0.1
        assert ex.backend == "bitset"
        assert ex.polarity is True
        assert ex.n_jobs == 2

    def test_hdiv_explorer_from_config(self):
        cfg = ExploreConfig(min_support=0.07, tree_support=0.2, backend="eclat")
        ex = HDivExplorer(cfg, max_candidates=16)
        assert ex.min_support == 0.07
        assert ex.tree_support == 0.2
        assert ex.backend == "eclat"
        assert ex.max_candidates == 16

    def test_legacy_kwargs_silent(self, recwarn):
        # Canonical keyword spellings are not deprecated.
        HDivExplorer(min_support=0.1, tree_support=0.2, backend="apriori")
        DivExplorer(min_support=0.1, max_length=2)
        assert not [w for w in recwarn if w.category is DeprecationWarning]

    def test_positional_min_support_silent(self, recwarn):
        ex = HDivExplorer(0.1, tree_support=0.2)
        assert ex.min_support == 0.1
        assert not [w for w in recwarn if w.category is DeprecationWarning]

    @pytest.mark.parametrize(
        "ctor,legacy,canonical",
        [
            (HDivExplorer, {"support": 0.2}, ("min_support", 0.2)),
            (HDivExplorer, {"st": 0.3}, ("tree_support", 0.3)),
            (HDivExplorer, {"max_level": 2}, ("max_length", 2)),
            (DivExplorer, {"support": 0.2}, ("min_support", 0.2)),
        ],
    )
    def test_renamed_kwargs_warn(self, ctor, legacy, canonical):
        with pytest.warns(DeprecationWarning):
            ex = ctor(**legacy)
        name, value = canonical
        assert getattr(ex.config, name) == value

    def test_unknown_kwarg_raises(self):
        with pytest.raises(TypeError):
            HDivExplorer(min_supprt=0.1)
        with pytest.raises(TypeError):
            DivExplorer(tree_supportt=0.2)

    def test_config_and_kwargs_mix(self):
        ex = DivExplorer(ExploreConfig(min_support=0.1), backend="eclat")
        assert ex.min_support == 0.1 and ex.backend == "eclat"


class TestBaselineConstruction:
    def test_sliceline_from_config(self):
        sl = SliceLine(ExploreConfig(min_support=0.2, max_length=2), k=5)
        assert sl.min_support == 0.2
        assert sl.max_level == 2
        assert sl.k == 5

    def test_sliceline_defaults(self):
        sl = SliceLine()
        assert sl.min_support == 0.01
        assert sl.max_level == 3

    def test_sliceline_max_level_warns(self):
        with pytest.warns(DeprecationWarning):
            sl = SliceLine(max_level=2)
        assert sl.max_level == 2

    def test_slicefinder_from_config(self):
        sf = SliceFinder(ExploreConfig(max_length=1), k=3)
        assert sf.max_level == 1 and sf.k == 3

    def test_slicefinder_max_level_validation(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                SliceFinder(max_level=0)

    def test_errortree_from_config(self):
        et = ErrorTree(ExploreConfig(min_support=0.2, criterion="entropy"))
        assert et.min_support == 0.2
        assert et.criterion == "entropy"

    def test_errortree_legacy_kwargs(self):
        et = ErrorTree(min_support=0.1, max_depth=2)
        assert et.min_support == 0.1 and et.max_depth == 2


class TestConfigDrivenExploration:
    def test_config_equals_legacy_results(self, pocket_data):
        table, errors = pocket_data
        cfg = ExploreConfig(min_support=0.1, tree_support=0.2)
        from_config = HDivExplorer(cfg).explore(table, errors)
        legacy = HDivExplorer(0.1, tree_support=0.2).explore(table, errors)
        assert from_config.itemsets() == legacy.itemsets()

    def test_bitset_backend_config(self, pocket_data):
        table, errors = pocket_data
        cfg = ExploreConfig(min_support=0.1, tree_support=0.2, backend="bitset")
        bit = HDivExplorer(cfg).explore(table, errors)
        ref = HDivExplorer(0.1, tree_support=0.2).explore(table, errors)
        assert bit.itemsets() == ref.itemsets()


class TestSerializationRoundTrip:
    def test_from_dict_inverts_to_dict(self):
        cfg = ExploreConfig(
            min_support=0.07, tree_support=0.2, criterion="entropy",
            backend="eclat", polarity=True, max_length=3, n_jobs=2,
        )
        assert ExploreConfig.from_dict(cfg.to_dict()) == cfg

    def test_from_dict_applies_defaults(self):
        assert ExploreConfig.from_dict({}) == ExploreConfig()
        assert ExploreConfig.from_dict({"backend": "bitset"}).backend == "bitset"

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown ExploreConfig keys"):
            ExploreConfig.from_dict({"min_support": 0.1, "supportz": 0.2})

    def test_from_dict_rejects_runtime_fields(self):
        # obs/profile_memory are runtime wiring, not serialized state:
        # they arrive via the keyword-only parameters, never the dict.
        with pytest.raises(ValueError, match="unknown ExploreConfig keys"):
            ExploreConfig.from_dict({"obs": None})

    def test_from_dict_validates(self):
        with pytest.raises(ValueError):
            ExploreConfig.from_dict({"min_support": 0.0})


class TestFingerprint:
    def test_insertion_order_insensitive(self):
        cfg = ExploreConfig(min_support=0.1, backend="bitset")
        data = cfg.to_dict()
        shuffled = dict(reversed(list(data.items())))
        assert list(shuffled) != list(data)
        rebuilt = ExploreConfig.from_dict(shuffled)
        assert rebuilt.fingerprint() == cfg.fingerprint()

    def test_noop_replace_preserves_fingerprint(self):
        cfg = ExploreConfig(min_support=0.1, tree_support=0.2)
        assert cfg.replace().fingerprint() == cfg.fingerprint()
        assert cfg.replace(min_support=0.1).fingerprint() == cfg.fingerprint()

    def test_changed_field_changes_fingerprint(self):
        cfg = ExploreConfig()
        assert cfg.replace(min_support=0.2).fingerprint() != cfg.fingerprint()

    def test_subset_keys(self):
        a = ExploreConfig(min_support=0.1, backend="bitset")
        b = ExploreConfig(min_support=0.1, backend="fpgrowth")
        assert a.fingerprint(keys=["min_support"]) == b.fingerprint(
            keys=["min_support"]
        )
        assert a.fingerprint() != b.fingerprint()

    def test_subset_keys_validated(self):
        with pytest.raises(ValueError, match="unknown fingerprint keys"):
            ExploreConfig().fingerprint(keys=["supportz"])

    def test_obs_does_not_leak_into_fingerprint(self):
        from repro.obs import ObsCollector

        with_obs = ExploreConfig(min_support=0.1, obs=ObsCollector())
        without = ExploreConfig(min_support=0.1)
        assert with_obs.fingerprint() == without.fingerprint()
