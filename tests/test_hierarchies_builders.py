"""Unit tests for taxonomy / prefix / FD hierarchy builders."""

import pytest

from repro.core.items import CategoricalItem
from repro.hierarchies import (
    fd_hierarchies,
    find_functional_dependencies,
    prefix_hierarchy,
    taxonomy_hierarchy,
)
from repro.hierarchies.fd import fd_mapping
from repro.tabular import Table


class TestTaxonomy:
    def test_two_level(self):
        h = taxonomy_hierarchy(
            "occ",
            ["MGR-A", "MGR-B", "SVC-A", "SVC-B"],
            {"MGR-A": "MGR", "MGR-B": "MGR", "SVC-A": "SVC", "SVC-B": "SVC"},
        )
        assert len(h.leaves()) == 4
        internal = [i for i in h.items(include_root=False) if not h.is_leaf(i)]
        assert {i.label for i in internal} == {"MGR", "SVC"}

    def test_three_level_chain(self):
        h = taxonomy_hierarchy(
            "geo",
            ["LA", "SF", "NYC", "BOS"],
            {"LA": "CA", "SF": "CA", "NYC": "NY", "BOS": "MA",
             "CA": "US-West", "NY": "US-East", "MA": "US-East"},
        )
        la = CategoricalItem("geo", "LA")
        # CA and US-West cover the same leaves {LA, SF}; levels with
        # identical value sets collapse, keeping the outer label.
        assert [a.label for a in h.ancestors(la)[:-1]] == ["US-West"]

    def test_three_level_chain_distinct_levels_survive(self):
        h = taxonomy_hierarchy(
            "geo",
            ["LA", "SF", "PDX", "NYC"],
            {"LA": "CA", "SF": "CA", "PDX": "OR",
             "CA": "US-West", "OR": "US-West", "NYC": "US-East"},
        )
        la = CategoricalItem("geo", "LA")
        assert [a.label for a in h.ancestors(la)[:-1]] == ["CA", "US-West"]

    def test_unmapped_leaves_hang_off_root(self):
        h = taxonomy_hierarchy("c", ["a", "b", "c"], {"a": "G", "b": "G"})
        assert CategoricalItem("c", "c") in h.children[h.root]

    def test_partition_validates(self):
        table = Table({"c": ["a", "b", "c", "a", "c"]})
        h = taxonomy_hierarchy("c", ["a", "b", "c"], {"a": "G", "b": "G"})
        h.validate(table)

    def test_single_child_chain_collapsed(self):
        h = taxonomy_hierarchy("c", ["a", "b"], {"a": "OnlyA", "b": "OnlyB"})
        # Each group covers exactly one leaf -> collapses to depth 1.
        assert len(h.items(include_root=False)) == 2

    def test_cycle_detected(self):
        with pytest.raises(ValueError, match="cycle"):
            taxonomy_hierarchy("c", ["a"], {"a": "g1", "g1": "g2", "g2": "g1"})

    def test_empty_leaves_rejected(self):
        with pytest.raises(ValueError):
            taxonomy_hierarchy("c", [], {})

    def test_group_item_values_cover_members(self):
        h = taxonomy_hierarchy(
            "c", ["a1", "a2", "b1"], {"a1": "A", "a2": "A", "b1": "B"}
        )
        group_a = next(
            i for i in h.items() if isinstance(i, CategoricalItem)
            and i.label == "A"
        )
        assert group_a.values == frozenset({"a1", "a2"})


class TestPrefix:
    def test_ip_style(self):
        h = prefix_hierarchy(
            "ip",
            ["10.0.0.1", "10.0.0.2", "10.0.1.1", "10.1.0.1", "192.168.0.1"],
        )
        leaf = CategoricalItem("ip", "10.0.0.1")
        labels = [a.label for a in h.ancestors(leaf)[:-1]]
        assert labels == ["10.0.0", "10.0", "10"]

    def test_singleton_prefix_levels_collapse(self):
        # 10.0.1.1 is alone under 10.0.1 (merges into the leaf item),
        # and 10.0 covers the same addresses as 10 (merges upward), so
        # a single ancestor level survives.
        h = prefix_hierarchy("ip", ["10.0.1.1", "10.0.2.2", "11.1.1.1"])
        leaf = CategoricalItem("ip", "10.0.1.1")
        labels = [a.label for a in h.ancestors(leaf)[:-1]]
        assert labels == ["10"]

    def test_geographic_paths(self):
        h = prefix_hierarchy(
            "pob", ["NA/US/CA", "NA/US/TX", "NA/MX", "EU/DE"], separator="/"
        )
        ca = CategoricalItem("pob", "NA/US/CA")
        labels = [a.label for a in h.ancestors(ca)[:-1]]
        assert labels == ["NA/US", "NA"]

    def test_max_levels(self):
        h = prefix_hierarchy("ip", ["1.2.3.4", "1.2.9.9", "7.5.5.5"],
                             max_levels=1)
        leaf = CategoricalItem("ip", "1.2.3.4")
        labels = [a.label for a in h.ancestors(leaf)[:-1]]
        assert labels == ["1"]

    def test_partition_validates(self):
        values = ["10.0.0.1", "10.0.1.1", "10.1.0.1", "192.168.0.1"]
        table = Table({"ip": values * 3})
        prefix_hierarchy("ip", values).validate(table)

    def test_values_without_separator(self):
        h = prefix_hierarchy("c", ["aaa", "bbb"])
        assert len(h.leaves()) == 2


class TestFunctionalDependencies:
    @pytest.fixture
    def geo_table(self):
        return Table(
            {
                "city": ["LA", "SF", "NYC", "LA", "BOS", "SEA"],
                "state": ["CA", "CA", "NY", "CA", "MA", "WA"],
                "region": ["West", "West", "East", "West", "East", "West"],
            }
        )

    def test_find_fds(self, geo_table):
        fds = find_functional_dependencies(geo_table)
        assert ("city", "state") in fds
        assert ("city", "region") in fds
        assert ("state", "region") in fds
        assert ("state", "city") not in fds

    def test_no_fd_when_violated(self):
        t = Table({"a": ["x", "x"], "b": ["1", "2"]})
        fds = find_functional_dependencies(t)
        # a does not determine b; b trivially determines the coarser a.
        assert ("a", "b") not in fds
        assert ("b", "a") in fds

    def test_equal_cardinality_not_reported(self):
        t = Table({"a": ["x", "y"], "b": ["1", "2"]})
        assert find_functional_dependencies(t) == []

    def test_missing_values_ignored(self):
        # With the missing cell ignored, a -> b holds and b is coarser.
        t = Table(
            {
                "a": ["x", "x", "y", "y", "z", "z"],
                "b": ["1", None, "1", "1", "2", "2"],
            }
        )
        fds = find_functional_dependencies(t, ["a", "b"])
        assert ("a", "b") in fds

    def test_fd_mapping(self, geo_table):
        mapping = fd_mapping(geo_table, "city", "state")
        assert mapping == {
            "LA": "CA", "SF": "CA", "NYC": "NY", "BOS": "MA", "SEA": "WA",
        }

    def test_fd_mapping_rejects_non_fd(self):
        t = Table({"a": ["x", "x"], "b": ["1", "2"]})
        with pytest.raises(ValueError):
            fd_mapping(t, "a", "b")

    def test_hierarchy_levels_chain(self, geo_table):
        hs = fd_hierarchies(geo_table)
        assert "city" in hs
        city_h = hs["city"]
        la = CategoricalItem("city", "LA")
        labels = [a.label for a in city_h.ancestors(la)[:-1]]
        assert labels == ["state=CA", "region=West"]
        city_h.validate(geo_table)

    def test_state_hierarchy_one_level(self, geo_table):
        hs = fd_hierarchies(geo_table)
        assert "state" in hs
        hs["state"].validate(geo_table)

    def test_no_hierarchy_for_coarsest(self, geo_table):
        hs = fd_hierarchies(geo_table)
        assert "region" not in hs
