"""White-box tests for FP-Growth internals (single-path shortcut)."""

import numpy as np
import pytest

from repro.core.items import CategoricalItem
from repro.core.mining import EncodedUniverse, mine_apriori, mine_fpgrowth
from repro.tabular import Table


def universe_from_rows(rows, outcome=None):
    """Build a universe where row i is a set of 'aK=v' style items."""
    attrs = sorted({a for row in rows for a, _v in row})
    columns = {
        a: [dict(row).get(a) for row in rows] for a in attrs
    }
    table = Table(columns)
    items = []
    for a in attrs:
        values = sorted({v for row in rows for x, v in row if x == a})
        items.extend(CategoricalItem(a, v) for v in values)
    o = np.ones(len(rows)) if outcome is None else np.asarray(outcome, float)
    return EncodedUniverse.from_table(table, items, o)


def ids_to_names(universe, mined):
    return {
        frozenset(str(universe.items[i]) for i in m.ids): m.stats.count
        for m in mined
    }


class TestSinglePath:
    def test_nested_single_path_tree(self):
        """Rows forming one nested chain: a ⊃ ab ⊃ abc."""
        rows = [
            [("a", "1")],
            [("a", "1"), ("b", "1")],
            [("a", "1"), ("b", "1"), ("c", "1")],
            [("a", "1"), ("b", "1"), ("c", "1")],
        ]
        universe = universe_from_rows(rows)
        fp = ids_to_names(universe, mine_fpgrowth(universe, 0.25))
        ap = ids_to_names(universe, mine_apriori(universe, 0.25))
        assert fp == ap
        assert fp[frozenset({"a=1"})] == 4
        assert fp[frozenset({"a=1", "b=1", "c=1"})] == 2

    def test_single_path_with_same_attribute_items(self):
        """Ancestor-style chains (two items of one attribute per row)
        must not combine in the single-path shortcut."""
        table = Table({"x": ["u", "u", "u"], "y": ["w", "w", "w"]})
        coarse = CategoricalItem("x", {"u", "v"}, label="uv")
        fine = CategoricalItem("x", "u")
        other = CategoricalItem("y", "w")
        universe = EncodedUniverse.from_table(
            table, [coarse, fine, other], np.ones(3)
        )
        mined = mine_fpgrowth(universe, 0.5)
        names = ids_to_names(universe, mined)
        assert frozenset({"x=uv", "x=u"}) not in names
        assert frozenset({"x=uv", "y=w"}) in names
        assert frozenset({"x=u", "y=w"}) in names
        # Same lattice as Apriori.
        assert names == ids_to_names(universe, mine_apriori(universe, 0.5))

    def test_single_path_respects_max_length(self):
        rows = [[("a", "1"), ("b", "1"), ("c", "1")]] * 4
        universe = universe_from_rows(rows)
        mined = mine_fpgrowth(universe, 0.5, max_length=2)
        assert max(len(m.ids) for m in mined) == 2

    def test_single_path_stats_are_deepest_node(self):
        outcome = [1.0, 0.0, 1.0, np.nan]
        rows = [
            [("a", "1"), ("b", "1")],
            [("a", "1"), ("b", "1")],
            [("a", "1")],
            [("a", "1"), ("b", "1")],
        ]
        universe = universe_from_rows(rows, outcome)
        mined = {
            frozenset(str(universe.items[i]) for i in m.ids): m.stats
            for m in mine_fpgrowth(universe, 0.25)
        }
        ab = mined[frozenset({"a=1", "b=1"})]
        assert ab.count == 3
        assert ab.n == 2          # rows 0, 1 defined; row 3 is NaN
        assert ab.total == pytest.approx(1.0)

    def test_conditional_single_path_matches_apriori(self, rng):
        """Random sparse data exercising conditional single paths."""
        n = 120
        rows = []
        for _ in range(n):
            row = []
            if rng.uniform() < 0.9:
                row.append(("a", "1"))
            if rng.uniform() < 0.6:
                row.append(("b", "1"))
            if rng.uniform() < 0.3:
                row.append(("c", "1"))
            if not row:
                row.append(("d", "1"))
            rows.append(row)
        universe = universe_from_rows(rows, rng.uniform(size=n))
        fp = ids_to_names(universe, mine_fpgrowth(universe, 0.05))
        ap = ids_to_names(universe, mine_apriori(universe, 0.05))
        assert fp == ap
