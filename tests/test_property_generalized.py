"""Property tests specific to generalized (hierarchical) mining."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.discretize import TreeDiscretizer
from repro.core.mining import generalized_universe, mine_fpgrowth
from repro.tabular import Table


@st.composite
def hierarchical_case(draw):
    n = draw(st.integers(80, 250))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    x = rng.uniform(-4, 4, n)
    y = rng.uniform(0, 1, n)
    cat = rng.choice(["p", "q", "r"], n)
    o = ((x > 0) | (cat == "p")).astype(float)
    table = Table({"x": x, "y": y, "cat": cat})
    st_support = draw(st.sampled_from([0.2, 0.3]))
    gamma = TreeDiscretizer(st_support).hierarchy_set(table, o)
    return table, o, gamma


@settings(max_examples=25, deadline=None)
@given(case=hierarchical_case(), support=st.sampled_from([0.1, 0.25]))
def test_extended_transactions_contain_ancestors(case, support):
    """If a row satisfies an item, it satisfies all its ancestors."""
    table, o, gamma = case
    universe = generalized_universe(table, o, gamma)
    for item in universe.items:
        for ancestor in gamma.ancestors(item):
            if ancestor not in universe.index:
                continue
            item_mask = universe.masks[universe.index[item]]
            anc_mask = universe.masks[universe.index[ancestor]]
            assert not np.any(item_mask & ~anc_mask)


@settings(max_examples=20, deadline=None)
@given(case=hierarchical_case(), support=st.sampled_from([0.15, 0.3]))
def test_generalization_closure_of_frequent_itemsets(case, support):
    """Replacing any item by its hierarchy parent keeps an itemset
    frequent with at least the same support — so every generalization
    of a reported subgroup is also reported."""
    table, o, gamma = case
    universe = generalized_universe(table, o, gamma)
    mined = {m.ids: m.stats.count for m in mine_fpgrowth(universe, support)}
    for ids, count in mined.items():
        for item_id in ids:
            item = universe.items[item_id]
            ancestors = gamma.ancestors(item)
            if not ancestors:
                continue
            parent = ancestors[0]
            if parent not in universe.index:
                continue
            swapped = frozenset(
                universe.index[parent] if j == item_id else j for j in ids
            )
            attrs = [universe.attribute_of[j] for j in swapped]
            if len(set(attrs)) != len(attrs):
                continue
            assert swapped in mined, (
                f"generalization {swapped} of frequent {ids} missing"
            )
            assert mined[swapped] >= count


@settings(max_examples=20, deadline=None)
@given(case=hierarchical_case())
def test_leaf_universe_is_subset_of_generalized(case):
    table, o, gamma = case
    universe = generalized_universe(table, o, gamma)
    leaf_items = set(gamma.leaf_items())
    assert leaf_items <= set(universe.items)


@settings(max_examples=20, deadline=None)
@given(case=hierarchical_case(), support=st.sampled_from([0.2, 0.4]))
def test_divergence_bounded_by_refinements(case, support):
    """A parent's statistic is a support-weighted mix of its children's,
    so max child divergence >= parent divergence (in absolute value)."""
    table, o, gamma = case
    global_mean = float(np.nanmean(o))
    for hierarchy in gamma:
        for parent, kids in hierarchy.children.items():
            child_divs = []
            for kid in kids:
                vals = o[kid.mask(table)]
                defined = vals[~np.isnan(vals)]
                if defined.size:
                    child_divs.append(abs(float(defined.mean()) - global_mean))
            vals = o[parent.mask(table)]
            defined = vals[~np.isnan(vals)]
            if not defined.size or not child_divs:
                continue
            parent_div = abs(float(defined.mean()) - global_mean)
            assert max(child_divs) >= parent_div - 1e-9
