"""The shipped examples must run end-to-end (they rot otherwise)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.slow
@pytest.mark.parametrize(
    "script, expected",
    [
        ("quickstart.py", "max |divergence|"),
        ("fairness_audit.py", "hierarchical exploration reaches"),
        ("model_debugging.py", "only the hierarchical search"),
        ("income_analysis.py", "generalized exploration reaches"),
        ("full_pipeline.py", "Shapley attribution"),
        ("data_quality_audit.py", "survive resampling"),
    ],
)
def test_example_runs(script, expected):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert expected in proc.stdout
