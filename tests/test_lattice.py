"""Tests for lattice navigation and redundancy pruning."""

import pytest

from repro.core.items import CategoricalItem, IntervalItem, Itemset
from repro.core.lattice import (
    generalizations,
    maximal_results,
    redundancy_prune,
    specializations,
)
from repro.core.results import SubgroupResult


def result(itemset, divergence, support=0.2):
    return SubgroupResult(
        itemset=itemset,
        support=support,
        count=int(support * 1000),
        mean=0.5,
        divergence=divergence,
        t=5.0,
    )


@pytest.fixture
def lattice_results():
    coarse = result(Itemset([IntervalItem("x", low=0)]), 0.20)
    fine = result(
        Itemset([IntervalItem("x", 0, 5), CategoricalItem("c", "a")]), 0.21
    )
    finer = result(
        Itemset(
            [
                IntervalItem("x", 0, 5),
                CategoricalItem("c", "a"),
                CategoricalItem("d", "z"),
            ]
        ),
        0.45,
    )
    unrelated = result(Itemset([CategoricalItem("e", "q")]), 0.30)
    return coarse, fine, finer, unrelated


class TestEdges:
    def test_generalizations(self, lattice_results):
        coarse, fine, finer, unrelated = lattice_results
        pool = list(lattice_results)
        gens = generalizations(finer, pool)
        assert coarse in gens and fine in gens
        assert unrelated not in gens

    def test_interval_covering_counts(self, lattice_results):
        coarse, fine, *_ = lattice_results
        # x>0 covers x=(0,5], so {x>0} generalizes {x=(0,5], c=a}.
        assert coarse.itemset.generalizes(fine.itemset)

    def test_specializations(self, lattice_results):
        coarse, fine, finer, unrelated = lattice_results
        pool = list(lattice_results)
        specs = specializations(coarse, pool)
        assert fine in specs and finer in specs
        assert unrelated not in specs

    def test_self_excluded(self, lattice_results):
        coarse = lattice_results[0]
        assert coarse not in generalizations(coarse, lattice_results)
        assert coarse not in specializations(coarse, lattice_results)


class TestRedundancyPrune:
    def test_near_duplicate_specialization_dropped(self, lattice_results):
        coarse, fine, finer, unrelated = lattice_results
        # Ordered best-first by |divergence|.
        ranked = [finer, unrelated, fine, coarse]
        kept = redundancy_prune(ranked, epsilon=0.05)
        # fine (0.21) is redundant w.r.t. ... no kept generalization of
        # fine is better: finer specializes fine, not vice versa; coarse
        # generalizes fine but comes later. Order matters: fine kept,
        # then coarse (0.20) redundant? coarse generalizes nothing kept…
        assert finer in kept and unrelated in kept

    def test_specialization_with_no_gain_dropped(self):
        coarse = result(Itemset([IntervalItem("x", low=0)]), 0.30)
        fine = result(
            Itemset([IntervalItem("x", 0, 5), CategoricalItem("c", "a")]),
            0.31,
        )
        kept = redundancy_prune([coarse, fine], epsilon=0.05)
        assert kept == [coarse]

    def test_specialization_with_real_gain_kept(self):
        coarse = result(Itemset([IntervalItem("x", low=0)]), 0.30)
        fine = result(
            Itemset([IntervalItem("x", 0, 5), CategoricalItem("c", "a")]),
            0.55,
        )
        kept = redundancy_prune([coarse, fine], epsilon=0.05)
        assert kept == [coarse, fine]

    def test_duplicate_itemsets_collapse(self):
        a = result(Itemset([CategoricalItem("c", "a")]), 0.3)
        b = result(Itemset([CategoricalItem("c", "a")]), 0.3)
        assert len(redundancy_prune([a, b])) == 1

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            redundancy_prune([], epsilon=-0.1)

    def test_empty(self):
        assert redundancy_prune([]) == []


class TestMaximal:
    def test_maximal_results(self, lattice_results):
        coarse, fine, finer, unrelated = lattice_results
        maxima = maximal_results(list(lattice_results))
        assert coarse in maxima and unrelated in maxima
        assert fine not in maxima and finer not in maxima
