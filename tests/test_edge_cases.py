"""Edge-case and failure-injection tests across the pipeline."""

import math

import numpy as np
import pytest

from repro.core.discretize import TreeDiscretizer
from repro.core.explorer import DivExplorer
from repro.core.hexplorer import HDivExplorer
from repro.core.items import CategoricalItem, IntervalItem, Itemset
from repro.core.mining import EncodedUniverse, mine
from repro.core.outcomes import array_outcome
from repro.tabular import ColumnKind, Schema, Table


class TestDegenerateData:
    def test_all_nan_outcome_explores_without_divergence(self, rng):
        table = Table({"x": rng.uniform(0, 1, 100)})
        outcomes = np.full(100, np.nan)
        result = HDivExplorer(0.2, tree_support=0.3).explore(table, outcomes)
        assert all(math.isnan(r.divergence) for r in result)
        assert result.max_divergence() == 0.0  # NaNs never rank

    def test_constant_outcome_zero_divergence(self, rng):
        table = Table({"x": rng.uniform(0, 1, 100)})
        result = HDivExplorer(0.2, tree_support=0.3).explore(
            table, np.ones(100)
        )
        assert all(r.divergence == pytest.approx(0.0) for r in result)

    def test_single_row_table(self):
        table = Table({"x": [1.0], "c": ["a"]})
        result = HDivExplorer(0.5, tree_support=0.5).explore(
            table, np.array([1.0])
        )
        assert len(result) >= 1

    def test_attribute_entirely_nan(self, rng):
        n = 200
        schema = Schema.from_kinds({"x": ColumnKind.CONTINUOUS})
        table = Table(
            {"x": [None] * n, "c": rng.choice(["a", "b"], n)},
            schema=schema,
        )
        o = (np.asarray(table["c"].to_list()) == "a").astype(float)
        result = HDivExplorer(0.1, tree_support=0.2).explore(table, o)
        # The NaN attribute contributes no items; cat still explored.
        assert all(
            item.attribute == "c" for r in result for item in r.itemset
        )

    def test_two_distinct_values_split_once(self):
        table = Table({"x": [0.0] * 50 + [1.0] * 50})
        o = np.array([0.0] * 50 + [1.0] * 50)
        tree = TreeDiscretizer(0.2).fit(table, "x", o)
        assert len(tree.leaf_items()) == 2
        assert tree.root.split_value == 0.0

    def test_missing_categorical_rows_never_match(self, rng):
        values = ["a", None, "b", None, "a"]
        table = Table({"c": values})
        o = np.ones(5)
        result = DivExplorer(0.2).explore(table, o)
        for r in result:
            assert r.count <= 3  # the two missing rows match nothing

    def test_extreme_outcome_magnitudes(self, rng):
        table = Table({"x": rng.uniform(0, 1, 200)})
        o = rng.normal(0, 1, 200) * 1e12
        result = HDivExplorer(0.2, tree_support=0.3).explore(table, o)
        assert np.isfinite(result.global_mean)

    def test_support_one_returns_universal_items_only(self, rng):
        table = Table({"c": ["a"] * 100})
        result = DivExplorer(1.0).explore(table, np.ones(100))
        assert len(result) == 1
        assert result[0].support == 1.0


class TestAdversarialItems:
    def test_item_mask_on_table_missing_categories(self):
        table = Table({"c": ["x", "y"]})
        item = CategoricalItem("c", "never-seen")
        assert not item.mask(table).any()

    def test_itemset_mask_on_empty_support_items(self):
        table = Table({"c": ["x", "y"], "v": [1.0, 2.0]})
        itemset = Itemset(
            [CategoricalItem("c", "zz"), IntervalItem("v", 0, 10)]
        )
        assert not itemset.mask(table).any()
        assert itemset.support(table) == 0.0

    def test_mining_with_empty_support_item(self):
        table = Table({"c": ["x"] * 50})
        items = [CategoricalItem("c", "x"), CategoricalItem("c", "absent")]
        universe = EncodedUniverse.from_table(table, items, np.ones(50))
        mined = mine(universe, 0.1)
        assert {m.ids for m in mined} == {frozenset({0})}

    def test_duplicate_items_in_universe(self):
        """The same item twice: same-attribute rule keeps them apart."""
        table = Table({"c": ["x"] * 20 + ["y"] * 20})
        item = CategoricalItem("c", "x")
        universe = EncodedUniverse.from_table(
            table, [item, item], np.ones(40)
        )
        mined = mine(universe, 0.1)
        # Two singleton itemsets (ids 0 and 1), never combined.
        assert all(len(m.ids) == 1 for m in mined)


class TestOutcomeBoundaries:
    def test_boolean_outcome_all_bottom(self):
        table = Table({"c": ["a", "b"]})
        out = array_outcome(np.array([np.nan, np.nan]), boolean=True)
        values = out.values(table)
        assert np.isnan(values).all()

    def test_explorer_with_negative_numeric_outcomes(self, rng):
        table = Table({"x": rng.uniform(0, 1, 300)})
        o = np.where(table.continuous("x").values > 0.5, -100.0, 100.0)
        result = HDivExplorer(0.2, tree_support=0.3).explore(table, o)
        assert result.max_divergence() > 50

    def test_welch_t_large_subgroup_equals_dataset(self, rng):
        """A subgroup = whole dataset has Δ = 0 and t = 0."""
        table = Table({"c": ["a"] * 100})
        o = rng.normal(size=100)
        result = DivExplorer(0.5).explore(table, o)
        full = result.find(Itemset([CategoricalItem("c", "a")]))
        assert full.divergence == pytest.approx(0.0)
        assert full.t == pytest.approx(0.0)
