"""Unit tests for repro.tabular.table."""

import numpy as np
import pytest

from repro.tabular import (
    CategoricalColumn,
    ColumnKind,
    ContinuousColumn,
    Schema,
    Table,
)


class TestConstruction:
    def test_from_mapping_infers_kinds(self, small_table):
        assert small_table.continuous_names == ["age"]
        assert sorted(small_table.categorical_names) == ["city", "sex"]
        assert small_table.n_rows == 6

    def test_from_columns(self):
        t = Table([ContinuousColumn("x", np.array([1.0]))])
        assert t.column_names == ["x"]

    def test_empty_table(self):
        t = Table({})
        assert t.n_rows == 0
        assert t.column_names == []

    def test_schema_forces_kind(self):
        schema = Schema.from_kinds({"code": ColumnKind.CATEGORICAL})
        t = Table({"code": [1, 2, 1]}, schema=schema)
        assert t.categorical_names == ["code"]
        assert t["code"].to_list() == ["1", "2", "1"]

    def test_schema_forces_continuous_with_missing(self):
        schema = Schema.from_kinds({"x": ColumnKind.CONTINUOUS})
        t = Table({"x": ["1.5", "", None]}, schema=schema)
        assert t["x"].to_list() == [1.5, None, None]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="differing lengths"):
            Table({"a": [1, 2], "b": [1]})

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Table(
                [
                    ContinuousColumn("x", np.array([1.0])),
                    ContinuousColumn("x", np.array([2.0])),
                ]
            )

    def test_non_column_iterable_rejected(self):
        with pytest.raises(TypeError):
            Table([np.array([1.0])])


class TestAccess:
    def test_getitem_unknown_raises_with_names(self, small_table):
        with pytest.raises(KeyError, match="age"):
            small_table["nope"]

    def test_typed_accessors(self, small_table):
        assert isinstance(small_table.continuous("age"), ContinuousColumn)
        assert isinstance(small_table.categorical("sex"), CategoricalColumn)

    def test_typed_accessors_reject_wrong_kind(self, small_table):
        with pytest.raises(TypeError):
            small_table.continuous("sex")
        with pytest.raises(TypeError):
            small_table.categorical("age")

    def test_contains(self, small_table):
        assert "age" in small_table
        assert "nope" not in small_table

    def test_schema_roundtrip(self, small_table):
        schema = small_table.schema
        assert schema.kind_of("age") is ColumnKind.CONTINUOUS
        assert schema.kind_of("sex") is ColumnKind.CATEGORICAL
        assert "age" in schema
        assert len(schema) == 3


class TestRowOps:
    def test_select(self, small_table):
        mask = np.array([True, False, False, True, False, False])
        sub = small_table.select(mask)
        assert sub.n_rows == 2
        assert sub["age"].to_list() == [22.0, 28.0]

    def test_select_wrong_shape(self, small_table):
        with pytest.raises(ValueError, match="mask shape"):
            small_table.select(np.array([True]))

    def test_take_reorders(self, small_table):
        sub = small_table.take([5, 0])
        assert sub["age"].to_list() == [60.0, 22.0]

    def test_head(self, small_table):
        assert small_table.head(2).n_rows == 2
        assert small_table.head(100).n_rows == 6

    def test_shuffle_is_permutation(self, small_table, rng):
        shuffled = small_table.shuffle(rng)
        assert sorted(shuffled["age"].to_list()) == sorted(
            small_table["age"].to_list()
        )


class TestColumnOps:
    def test_with_column_adds(self, small_table):
        t = small_table.with_values("score", [1.0] * 6)
        assert "score" in t
        assert small_table.column_names == ["age", "sex", "city"]  # original intact

    def test_with_column_replaces(self, small_table):
        t = small_table.with_values("age", [0.0] * 6)
        assert t["age"].to_list() == [0.0] * 6

    def test_with_column_length_checked(self, small_table):
        with pytest.raises(ValueError, match="length"):
            small_table.with_column(ContinuousColumn("z", np.array([1.0])))

    def test_drop(self, small_table):
        t = small_table.drop(["sex"])
        assert t.column_names == ["age", "city"]

    def test_drop_missing_raises(self, small_table):
        with pytest.raises(KeyError):
            small_table.drop(["nope"])

    def test_project_orders(self, small_table):
        t = small_table.project(["city", "age"])
        assert t.column_names == ["city", "age"]


class TestDescribe:
    def test_continuous_summary(self, small_table):
        d = small_table.describe()["age"]
        assert d["kind"] == "continuous"
        assert d["count"] == 6 and d["missing"] == 0
        assert d["min"] == 22.0 and d["max"] == 60.0

    def test_categorical_summary(self, small_table):
        d = small_table.describe()["city"]
        assert d["kind"] == "categorical"
        assert d["n_categories"] == 3
        assert d["top"] == "LA" and d["top_count"] == 3

    def test_missing_counted(self):
        t = Table({"x": [1.0, None, 3.0]})
        d = t.describe()["x"]
        assert d["missing"] == 1 and d["count"] == 2

    def test_all_missing_continuous(self):
        from repro.tabular import ColumnKind, Schema

        schema = Schema.from_kinds({"x": ColumnKind.CONTINUOUS})
        t = Table({"x": [None, None]}, schema=schema)
        d = t.describe()["x"]
        assert d["min"] is None and d["mean"] is None


class TestConversion:
    def test_to_dict(self, small_table):
        d = small_table.to_dict()
        assert d["sex"] == ["F", "M", "M", "F", "F", "M"]

    def test_equals(self, small_table):
        clone = Table(small_table.to_dict())
        assert small_table.equals(clone)
        assert not small_table.equals(clone.drop(["sex"]))

    def test_equals_detects_value_change(self, small_table):
        other = small_table.with_values("age", [0.0] * 6)
        assert not small_table.equals(other)

    def test_repr_mentions_kinds(self, small_table):
        assert "age:num" in repr(small_table)
        assert "sex:cat" in repr(small_table)
