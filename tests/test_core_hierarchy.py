"""Unit tests for repro.core.hierarchy."""

import pytest

from repro.core.hierarchy import HierarchySet, ItemHierarchy, flat_hierarchy
from repro.core.items import CategoricalItem, IntervalItem
from repro.tabular import Table


@pytest.fixture
def interval_hierarchy():
    """x: root → (≤0, >0); >0 → (0,5], >5."""
    root = IntervalItem("x")
    low = IntervalItem("x", high=0)
    high = IntervalItem("x", low=0)
    mid = IntervalItem("x", 0, 5)
    top = IntervalItem("x", low=5)
    return ItemHierarchy(
        "x", root, {root: (low, high), high: (mid, top)}
    )


@pytest.fixture
def x_table():
    return Table({"x": [-3.0, -1.0, 2.0, 4.0, 7.0, 9.0]})


class TestConstruction:
    def test_wrong_attribute_root(self):
        with pytest.raises(ValueError):
            ItemHierarchy("x", IntervalItem("y"), {})

    def test_child_wrong_attribute(self):
        root = IntervalItem("x")
        with pytest.raises(ValueError, match="attribute"):
            ItemHierarchy("x", root, {root: (IntervalItem("y", high=0),)})

    def test_two_parents_rejected(self):
        root = IntervalItem("x")
        a = IntervalItem("x", high=0)
        b = IntervalItem("x", low=0)
        kid = IntervalItem("x", 1, 2)
        with pytest.raises(ValueError, match="two parents"):
            ItemHierarchy("x", root, {root: (a, b), a: (kid,), b: (kid,)})

    def test_unreachable_item_rejected(self):
        root = IntervalItem("x")
        stray = IntervalItem("x", 1, 2)
        stray_kid = IntervalItem("x", 1, 1.5)
        with pytest.raises(ValueError, match="reachable"):
            ItemHierarchy("x", root, {stray: (stray_kid,)})

    def test_empty_children_entries_dropped(self):
        root = IntervalItem("x")
        h = ItemHierarchy("x", root, {root: ()})
        assert h.is_leaf(root)


class TestQueries:
    def test_items_preorder(self, interval_hierarchy):
        items = interval_hierarchy.items()
        assert items[0] == IntervalItem("x")
        assert len(items) == 5

    def test_items_exclude_root(self, interval_hierarchy):
        assert len(interval_hierarchy.items(include_root=False)) == 4

    def test_leaves(self, interval_hierarchy):
        leaves = interval_hierarchy.leaves()
        assert IntervalItem("x", high=0) in leaves
        assert IntervalItem("x", 0, 5) in leaves
        assert IntervalItem("x", low=5) in leaves
        assert len(leaves) == 3

    def test_ancestors_nearest_first(self, interval_hierarchy):
        mid = IntervalItem("x", 0, 5)
        anc = interval_hierarchy.ancestors(mid)
        assert anc == [IntervalItem("x", low=0), IntervalItem("x")]

    def test_descendants(self, interval_hierarchy):
        high = IntervalItem("x", low=0)
        desc = interval_hierarchy.descendants(high)
        assert set(desc) == {IntervalItem("x", 0, 5), IntervalItem("x", low=5)}

    def test_depth(self, interval_hierarchy):
        assert interval_hierarchy.depth(IntervalItem("x")) == 0
        assert interval_hierarchy.depth(IntervalItem("x", 0, 5)) == 2

    def test_contains(self, interval_hierarchy):
        assert IntervalItem("x", 0, 5) in interval_hierarchy
        assert IntervalItem("x", 0, 99) not in interval_hierarchy

    def test_render_contains_all(self, interval_hierarchy):
        text = interval_hierarchy.render()
        assert "x=*" in text
        assert "x=(0-5]" in text

    def test_render_annotations(self, interval_hierarchy):
        text = interval_hierarchy.render(annotate=lambda item: "A")
        assert "[A]" in text


class TestValidation:
    def test_valid_partition_passes(self, interval_hierarchy, x_table):
        interval_hierarchy.validate(x_table)

    def test_overlap_detected(self, x_table):
        root = IntervalItem("x")
        a = IntervalItem("x", high=5)
        b = IntervalItem("x", low=0)  # overlaps (0, 5]
        h = ItemHierarchy("x", root, {root: (a, b)})
        with pytest.raises(ValueError, match="overlap"):
            h.validate(x_table)

    def test_gap_detected(self, x_table):
        root = IntervalItem("x")
        a = IntervalItem("x", high=0)
        b = IntervalItem("x", low=5)  # misses (0, 5]
        h = ItemHierarchy("x", root, {root: (a, b)})
        with pytest.raises(ValueError, match="cover"):
            h.validate(x_table)


class TestFlatHierarchy:
    def test_interval_items(self):
        items = [IntervalItem("x", high=0), IntervalItem("x", low=0)]
        h = flat_hierarchy("x", items)
        assert h.root == IntervalItem("x")
        assert set(h.leaves()) == set(items)

    def test_categorical_items(self):
        items = [CategoricalItem("c", "a"), CategoricalItem("c", "b")]
        h = flat_hierarchy("c", items)
        assert h.root.values == frozenset({"a", "b"})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            flat_hierarchy("x", [])

    def test_mixed_types_rejected(self):
        with pytest.raises(TypeError):
            flat_hierarchy("x", [IntervalItem("x"), CategoricalItem("x", "a")])


class TestHierarchySet:
    def test_add_and_lookup(self, interval_hierarchy):
        gamma = HierarchySet([interval_hierarchy])
        assert "x" in gamma
        assert gamma["x"] is interval_hierarchy
        assert gamma.attributes == ["x"]
        assert len(gamma) == 1

    def test_duplicate_attribute_rejected(self, interval_hierarchy):
        gamma = HierarchySet([interval_hierarchy])
        with pytest.raises(ValueError):
            gamma.add(interval_hierarchy)

    def test_all_items_excludes_roots(self, interval_hierarchy):
        gamma = HierarchySet([interval_hierarchy])
        items = gamma.all_items()
        assert IntervalItem("x") not in items
        assert len(items) == 4

    def test_all_items_with_roots(self, interval_hierarchy):
        gamma = HierarchySet([interval_hierarchy])
        assert len(gamma.all_items(include_roots=True)) == 5

    def test_leaf_items(self, interval_hierarchy):
        gamma = HierarchySet([interval_hierarchy])
        assert len(gamma.leaf_items()) == 3

    def test_add_flat(self):
        gamma = HierarchySet()
        gamma.add_flat("c", [CategoricalItem("c", "a"), CategoricalItem("c", "b")])
        assert "c" in gamma
        assert len(gamma.leaf_items()) == 2

    def test_ancestors_excludes_root(self, interval_hierarchy):
        gamma = HierarchySet([interval_hierarchy])
        anc = gamma.ancestors(IntervalItem("x", 0, 5))
        assert anc == [IntervalItem("x", low=0)]

    def test_ancestors_unknown_item_empty(self, interval_hierarchy):
        gamma = HierarchySet([interval_hierarchy])
        assert gamma.ancestors(IntervalItem("zz", 0, 1)) == []

    def test_validate_all(self, interval_hierarchy, x_table):
        HierarchySet([interval_hierarchy]).validate(x_table)
