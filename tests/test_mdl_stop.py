"""Tests for the MDLP stopping rule (Fayyad–Irani)."""

import numpy as np
import pytest

from repro.core.discretize import TreeDiscretizer
from repro.core.discretize.criteria import mdl_accepts
from repro.core.divergence import OutcomeStats
from repro.tabular import Table


def stats(values):
    return OutcomeStats.from_outcomes(np.asarray(values, dtype=float))


class TestMdlAccepts:
    def test_accepts_clean_separation(self):
        parent = stats([1.0] * 50 + [0.0] * 50)
        left = stats([1.0] * 50)
        right = stats([0.0] * 50)
        assert mdl_accepts(parent, left, right)

    def test_rejects_pure_noise_split(self):
        rng = np.random.default_rng(0)
        data = (rng.uniform(size=200) < 0.5).astype(float)
        parent = stats(data)
        left = stats(data[:100])
        right = stats(data[100:])
        assert not mdl_accepts(parent, left, right)

    def test_rejects_tiny_sets(self):
        assert not mdl_accepts(stats([1.0]), stats([1.0]), stats([]))


class TestMdlTree:
    def test_mdl_prunes_noise_splits(self, rng):
        """On a step function + noise, MDL stops at (roughly) the step
        while the support-only rule keeps splitting."""
        n = 3000
        x = rng.uniform(0, 10, n)
        o = ((x > 6) ^ (rng.uniform(size=n) < 0.05)).astype(float)
        table = Table({"x": x})
        plain = TreeDiscretizer(0.02, criterion="entropy").fit(table, "x", o)
        mdl = TreeDiscretizer(
            0.02, criterion="entropy", mdl_stop=True
        ).fit(table, "x", o)
        assert len(mdl.leaf_items()) < len(plain.leaf_items())
        assert len(mdl.leaf_items()) <= 4
        # The informative split is still taken.
        assert mdl.root.split_value == pytest.approx(6.0, abs=0.2)

    def test_mdl_keeps_real_structure(self, rng):
        n = 3000
        x = rng.uniform(0, 9, n)
        o = (np.floor(x / 3) % 2 == 1).astype(float)  # stripes at 3, 6
        table = Table({"x": x})
        mdl = TreeDiscretizer(
            0.05, criterion="entropy", mdl_stop=True
        ).fit(table, "x", o)
        assert len(mdl.leaf_items()) >= 3

    def test_mdl_requires_entropy_criterion(self):
        with pytest.raises(ValueError, match="entropy"):
            TreeDiscretizer(0.1, criterion="divergence", mdl_stop=True)

    def test_mdl_constant_outcome_single_leaf(self, rng):
        table = Table({"x": rng.uniform(0, 1, 400)})
        tree = TreeDiscretizer(
            0.05, criterion="entropy", mdl_stop=True
        ).fit(table, "x", np.ones(400))
        assert tree.root.is_leaf
