"""Tests for the Slice Finder and SliceLine baselines."""

import math

import numpy as np
import pytest

from repro.baselines import (
    SliceFinder,
    SliceFinderResult,
    SliceLine,
    SliceLineResult,
)
from repro.baselines.slicefinder import effect_size
from repro.core.items import CategoricalItem, IntervalItem
from repro.tabular import Table


@pytest.fixture
def sliced_data(rng):
    """Errors concentrated where x>5 and cat='bad'."""
    n = 2000
    x = rng.uniform(0, 10, n)
    cat = rng.choice(["good", "bad"], n)
    p = np.where((x > 5) & (cat == "bad"), 0.6, 0.05)
    errors = (rng.uniform(size=n) < p).astype(float)
    table = Table({"x": x, "cat": cat})
    items = [
        IntervalItem("x", high=5),
        IntervalItem("x", low=5),
        CategoricalItem("cat", "good"),
        CategoricalItem("cat", "bad"),
    ]
    return table, errors, items


class TestEffectSize:
    def test_positive_when_slice_worse(self, rng):
        worse = rng.uniform(size=100) < 0.8
        better = rng.uniform(size=100) < 0.1
        phi = effect_size(worse.astype(float), better.astype(float))
        assert phi > 1.0

    def test_zero_same_distribution(self):
        a = np.array([1.0, 0.0] * 50)
        assert abs(effect_size(a, a)) < 1e-12

    def test_nan_for_tiny_groups(self):
        assert math.isnan(effect_size(np.array([1.0]), np.zeros(10)))

    def test_inf_zero_variance_diff_means(self):
        assert math.isinf(effect_size(np.ones(5), np.zeros(5)))


class TestSliceFinder:
    def test_finds_problematic_slice(self, sliced_data):
        table, errors, items = sliced_data
        found = SliceFinder(effect_size_threshold=0.4, k=5).find(
            table, errors, items
        )
        assert found
        assert all(isinstance(r, SliceFinderResult) for r in found)
        best = max(found, key=lambda r: r.effect_size)
        assert best.effect_size >= 0.4
        # The slice involves the planted region.
        attrs = best.itemset.attributes
        assert "x" in attrs or "cat" in attrs

    def test_results_sorted_by_size(self, sliced_data):
        table, errors, items = sliced_data
        found = SliceFinder(effect_size_threshold=0.2, k=10).find(
            table, errors, items
        )
        sizes = [r.size for r in found]
        assert sizes == sorted(sizes, reverse=True)

    def test_high_threshold_gives_smaller_slices(self, sliced_data):
        table, errors, items = sliced_data
        low = SliceFinder(effect_size_threshold=0.3, k=3).find(
            table, errors, items
        )
        high = SliceFinder(effect_size_threshold=1.2, k=3).find(
            table, errors, items
        )
        if low and high:
            assert max(r.size for r in high) <= max(r.size for r in low)

    def test_max_level_respected(self, sliced_data):
        table, errors, items = sliced_data
        found = SliceFinder(
            effect_size_threshold=0.0, k=100, max_level=1
        ).find(table, errors, items)
        assert all(len(r.itemset) == 1 for r in found)

    def test_k_limits_results(self, sliced_data):
        table, errors, items = sliced_data
        found = SliceFinder(effect_size_threshold=0.0, k=2).find(
            table, errors, items
        )
        assert len(found) <= 2

    def test_impossible_threshold_empty(self, sliced_data):
        table, errors, items = sliced_data
        found = SliceFinder(effect_size_threshold=50.0, k=3).find(
            table, errors, items
        )
        assert found == []

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SliceFinder(k=0)
        with pytest.raises(ValueError):
            SliceFinder(max_level=0)

    def test_no_attribute_repeats(self, sliced_data):
        table, errors, items = sliced_data
        found = SliceFinder(effect_size_threshold=0.0, k=50).find(
            table, errors, items
        )
        for r in found:
            attrs = [it.attribute for it in r.itemset]
            assert len(set(attrs)) == len(attrs)


class TestSliceLine:
    def test_finds_planted_slice(self, sliced_data):
        table, errors, items = sliced_data
        found = SliceLine(alpha=0.95, k=3, min_support=0.05).find(
            table, errors, items
        )
        assert found
        assert all(isinstance(r, SliceLineResult) for r in found)
        best = found[0]
        assert best.avg_error > errors.mean()

    def test_scores_sorted_descending(self, sliced_data):
        table, errors, items = sliced_data
        found = SliceLine(alpha=0.9, k=10, min_support=0.05).find(
            table, errors, items
        )
        scores = [r.score for r in found]
        assert scores == sorted(scores, reverse=True)

    def test_min_support_respected(self, sliced_data):
        table, errors, items = sliced_data
        s = 0.3
        found = SliceLine(alpha=0.95, k=50, min_support=s).find(
            table, errors, items
        )
        assert all(r.support >= s for r in found)

    def test_alpha_one_ignores_size(self, sliced_data):
        table, errors, items = sliced_data
        found = SliceLine(alpha=1.0, k=1, min_support=0.05).find(
            table, errors, items
        )
        # With α=1 the top slice maximizes average error alone.
        best_err = found[0].avg_error
        others = SliceLine(alpha=1.0, k=100, min_support=0.05).find(
            table, errors, items
        )
        assert best_err == pytest.approx(max(r.avg_error for r in others))

    def test_small_alpha_prefers_big_slices(self, sliced_data):
        table, errors, items = sliced_data
        greedy = SliceLine(alpha=0.99, k=1, min_support=0.05).find(
            table, errors, items
        )
        cautious = SliceLine(alpha=0.05, k=1, min_support=0.05).find(
            table, errors, items
        )
        assert cautious[0].size >= greedy[0].size

    def test_max_level(self, sliced_data):
        table, errors, items = sliced_data
        found = SliceLine(
            alpha=0.9, k=100, min_support=0.01, max_level=1
        ).find(table, errors, items)
        assert all(len(r.itemset) == 1 for r in found)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SliceLine(alpha=0.0)
        with pytest.raises(ValueError):
            SliceLine(min_support=0.0)

    def test_matches_divexplorer_best_slice(self, sliced_data):
        """§VI-G: SliceLine's best slice = base DivExplorer's best."""
        from repro.core.explorer import DivExplorer

        table, errors, items = sliced_data
        sl = SliceLine(alpha=0.99, k=1, min_support=0.05).find(
            table, errors, items
        )
        interval_items = {
            "x": [it for it in items if it.attribute == "x"]
        }
        dx = DivExplorer(0.05).explore(
            table, errors, continuous_items=interval_items
        )
        best_dx = dx.top_k(1, by="divergence")[0]
        assert sl[0].itemset == best_dx.itemset
