"""Unit tests for the reprolint static analyzer (repro.devtools).

Each rule is exercised on seeded fixture snippets — one that must fire
and one that must stay silent — plus coverage of path scoping, the
suppression pragmas, the baseline round-trip, the reporters and the
CLI exit-code contract.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.devtools import Baseline, LintRunner
from repro.devtools.lint import main
from repro.devtools.model import Severity, all_rules, get_rule
from repro.devtools.reporting import render_json, render_text
from repro.devtools.suppressions import parse_suppressions

LIB_PATH = "src/repro/somemodule.py"


def lint(source: str, path: str = LIB_PATH) -> list:
    runner = LintRunner(root=Path("."))
    return runner.check_source(textwrap.dedent(source), path)


def codes(source: str, path: str = LIB_PATH) -> list[str]:
    return [f.code for f in lint(source, path)]


class TestRegistry:
    def test_thirteen_repo_rules_registered(self):
        rules = all_rules()
        assert len(rules) >= 13
        assert [r.code for r in rules] == sorted(r.code for r in rules)

    def test_codes_names_and_rationales_unique_and_set(self):
        rules = all_rules()
        assert len({r.code for r in rules}) == len(rules)
        assert len({r.name for r in rules}) == len(rules)
        for rule in rules:
            assert rule.rationale, rule.code
            assert rule.severity in (Severity.ERROR, Severity.WARNING)

    def test_get_rule(self):
        assert get_rule("RPL001").name == "forbidden-import"


class TestForbiddenImport:
    def test_flags_banned_imports(self):
        src = """\
        import pandas as pd
        from sklearn.tree import DecisionTreeClassifier
        import urllib.request
        """
        assert codes(src) == ["RPL001", "RPL001", "RPL001"]

    def test_allows_numpy_and_stdlib(self):
        assert codes("import numpy as np\nimport math\nimport json\n") == []


class TestGlobalRng:
    def test_flags_numpy_global_rng_calls(self):
        src = """\
        import numpy as np
        np.random.seed(0)
        xs = np.random.rand(5)
        """
        assert codes(src) == ["RPL002", "RPL002"]

    def test_flags_stdlib_random(self):
        assert codes("import random\nrandom.shuffle(xs)\n") == ["RPL002"]
        assert codes("from random import choice\n") == ["RPL002"]

    def test_allows_injected_generator(self):
        src = """\
        import numpy as np
        rng = np.random.default_rng(7)
        rng.shuffle(xs)
        g = np.random.Generator(np.random.SeedSequence(1).generate_state)
        """
        assert codes(src) == []


class TestMutableDefault:
    def test_flags_literals_and_constructors(self):
        src = """\
        def f(xs=[]):
            return xs

        def g(*, m={}, s=set()):
            return m, s
        """
        assert codes(src) == ["RPL003", "RPL003", "RPL003"]

    def test_allows_none_and_immutables(self):
        src = """\
        def f(xs=None, t=(), s="x", n=3):
            return xs
        """
        assert codes(src) == []


class TestBareExcept:
    def test_flags_bare_except(self):
        src = """\
        try:
            run()
        except:
            pass
        """
        assert codes(src) == ["RPL004"]

    def test_allows_typed_except(self):
        src = """\
        try:
            run()
        except ValueError:
            pass
        """
        assert codes(src) == []


class TestAssertInLibrary:
    SRC = "def f(x):\n    assert x > 0\n    return x\n"

    def test_flags_assert_in_src(self):
        assert codes(self.SRC) == ["RPL005"]

    def test_scoped_out_of_benchmarks(self):
        assert codes(self.SRC, path="benchmarks/bench_thing.py") == []


class TestFloatEquality:
    DIV_PATH = "src/repro/core/divergence.py"

    def test_flags_float_literal_comparison(self):
        assert codes("ok = x == 0.5\n", path=self.DIV_PATH) == ["RPL006"]
        assert codes("ok = x != 1.0\n", path=self.DIV_PATH) == ["RPL006"]

    def test_int_and_ordering_comparisons_fine(self):
        assert codes("ok = x == 0\nlt = x <= 0.5\n", path=self.DIV_PATH) == []

    def test_scoped_to_divergence_sensitive_modules(self):
        assert codes("ok = x == 0.5\n", path="src/repro/tabular/table.py") == []


class TestFrozenMutation:
    def test_flags_setattr_backdoor_and_self_assignment(self):
        src = """\
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Cfg:
            x: int = 0

            def bump(self):
                object.__setattr__(self, "x", self.x + 1)

            def sneak(self):
                self.x = 5
        """
        assert codes(src) == ["RPL007", "RPL007"]

    def test_post_init_and_unfrozen_are_fine(self):
        src = """\
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Cfg:
            x: int = 0

            def __post_init__(self):
                object.__setattr__(self, "x", abs(self.x))

        @dataclass
        class Mutable:
            y: int = 0

            def bump(self):
                self.y += 1
        """
        assert codes(src) == []


class TestForkUnsafeState:
    def test_flags_mutable_globals_in_mp_modules(self):
        src = """\
        import multiprocessing

        _CACHE = {}
        _QUEUE: list = []
        """
        assert codes(src) == ["RPL008", "RPL008"]

    def test_none_sentinel_and_non_mp_modules_fine(self):
        mp_ok = "import multiprocessing\n_ENGINE = None\nLIMIT = 4\n"
        plain = "_CACHE = {}\n"
        assert codes(mp_ok) == []
        assert codes(plain) == []


class TestSetIteration:
    def test_flags_direct_set_iteration(self):
        src = """\
        for x in {1, 2, 3}:
            emit(x)
        ys = [f(y) for y in set(xs)]
        """
        assert codes(src) == ["RPL009", "RPL009"]

    def test_sorted_and_membership_fine(self):
        src = """\
        for x in sorted(set(xs)):
            emit(x)
        ok = x in set(xs)
        """
        assert codes(src) == []


class TestWallClockTiming:
    def test_flags_time_time(self):
        src = "import time\nstart = time.time()\n"
        assert codes(src) == ["RPL010"]
        assert codes("from time import time\n") == ["RPL010"]

    def test_perf_counter_fine(self):
        assert codes("import time\nstart = time.perf_counter()\n") == []


class TestSilentDeprecation:
    def test_flags_silent_legacy_pop(self):
        src = """\
        def shim(**kwargs):
            support = kwargs.pop("max_level", None)
            return support
        """
        assert codes(src) == ["RPL011"]

    def test_warned_shim_is_fine(self):
        src = """\
        import warnings

        def shim(**kwargs):
            if "max_level" in kwargs:
                warnings.warn("deprecated", DeprecationWarning, stacklevel=2)
            return kwargs.pop("max_level", None)
        """
        assert codes(src) == []

    def test_legacy_aliases_reference_needs_warning(self):
        src = """\
        def shim(kwargs):
            for legacy, canonical in LEGACY_ALIASES.items():
                kwargs.pop(legacy, None)
        """
        assert codes(src) == ["RPL011"]


class TestUntypedPublicApi:
    CFG_PATH = "src/repro/core/config.py"

    def test_flags_unannotated_public_function(self):
        found = codes("def api(x):\n    return x\n", path=self.CFG_PATH)
        assert found == ["RPL012", "RPL012"]  # parameter + return

    def test_annotated_and_private_fine(self):
        src = """\
        def api(x: int) -> int:
            return x

        def _helper(y):
            return y
        """
        assert codes(src, path=self.CFG_PATH) == []

    def test_scoped_to_typed_modules(self):
        assert codes("def api(x):\n    return x\n") == []


class TestPrintInLibrary:
    def test_flags_print_in_library_code(self):
        src = """\
        def mine(x):
            print("debug:", x)
            return x
        """
        assert codes(src) == ["RPL013"]

    def test_cli_and_lint_renderer_allowlisted(self):
        src = "print('hello')\n"
        assert codes(src, path="src/repro/cli.py") == []
        assert codes(src, path="src/repro/devtools/lint.py") == []
        assert codes(src, path="src/repro/experiments/paper.py") == []

    def test_shadowed_or_method_print_fine(self):
        src = """\
        class Writer:
            def print(self, text):
                return text

        def render(w):
            return w.print("x")
        """
        assert codes(src) == []

    def test_not_applied_outside_library(self):
        assert codes("print('x')\n", path="benchmarks/bench_x.py") == []


class TestParseError:
    def test_unparseable_module_yields_rpl000(self):
        found = lint("def broken(:\n")
        assert [f.code for f in found] == ["RPL000"]
        assert found[0].severity is Severity.ERROR


class TestSuppressions:
    def test_same_line_pragma(self):
        src = "import time\nstart = time.time()  # reprolint: disable=RPL010\n"
        assert codes(src) == []

    def test_disable_next_line(self):
        src = (
            "import time\n"
            "# reprolint: disable-next-line=RPL010\n"
            "start = time.time()\n"
        )
        assert codes(src) == []

    def test_disable_file(self):
        src = (
            "# reprolint: disable-file=RPL010\n"
            "import time\n"
            "a = time.time()\n"
            "b = time.time()\n"
        )
        assert codes(src) == []

    def test_wrong_code_does_not_suppress(self):
        src = "import time\nstart = time.time()  # reprolint: disable=RPL001\n"
        assert codes(src) == ["RPL010"]

    def test_multiple_codes_in_one_pragma(self):
        index = parse_suppressions(
            "x = 1  # reprolint: disable=RPL001, RPL010\n"
        )
        assert index.by_line[1] == {"RPL001", "RPL010"}


def _write_bad_module(root: Path) -> Path:
    pkg = root / "src" / "repro" / "badmod.py"
    pkg.parent.mkdir(parents=True, exist_ok=True)
    pkg.write_text(
        "import time\n"
        "def f(xs=[]):\n"
        "    assert xs\n"
        "    return time.time()\n",
        encoding="utf-8",
    )
    return pkg


class TestRunnerAndBaseline:
    def test_run_collects_sorted_findings(self, tmp_path):
        _write_bad_module(tmp_path)
        report = LintRunner(root=tmp_path).run([tmp_path / "src"])
        assert [f.code for f in report.findings] == [
            "RPL003", "RPL005", "RPL010",
        ]
        assert report.files_checked == 1
        assert not report.ok

    def test_baseline_round_trip_grandfathers_findings(self, tmp_path):
        _write_bad_module(tmp_path)
        first = LintRunner(root=tmp_path).run([tmp_path / "src"])
        baseline = Baseline.from_findings(first.findings)
        baseline.dump(tmp_path / ".reprolint.json")

        reloaded = Baseline.load(tmp_path / ".reprolint.json")
        second = LintRunner(root=tmp_path, baseline=reloaded).run(
            [tmp_path / "src"]
        )
        assert second.ok
        assert second.suppressed_baseline == len(first.findings)

    def test_fingerprints_survive_line_moves(self, tmp_path):
        path = _write_bad_module(tmp_path)
        first = LintRunner(root=tmp_path).run([tmp_path / "src"])
        path.write_text(
            "\n\n" + path.read_text(encoding="utf-8"), encoding="utf-8"
        )
        second = LintRunner(root=tmp_path).run([tmp_path / "src"])
        assert [f.fingerprint for f in first.findings] == [
            f.fingerprint for f in second.findings
        ]
        assert [f.line for f in first.findings] != [
            f.line for f in second.findings
        ]

    def test_missing_baseline_is_empty(self, tmp_path):
        assert len(Baseline.load(tmp_path / "nope.json")) == 0

    def test_baseline_version_mismatch_rejected(self, tmp_path):
        bad = tmp_path / ".reprolint.json"
        bad.write_text('{"version": 99, "findings": []}', encoding="utf-8")
        with pytest.raises(ValueError, match="version"):
            Baseline.load(bad)


class TestReporters:
    def test_text_report_lists_findings_and_summary(self, tmp_path):
        _write_bad_module(tmp_path)
        report = LintRunner(root=tmp_path).run([tmp_path / "src"])
        text = render_text(report)
        assert "src/repro/badmod.py:2" in text
        assert "RPL003" in text
        assert "1 files" in text and "errors" in text

    def test_clean_text_report(self, tmp_path):
        report = LintRunner(root=tmp_path).run([])
        assert render_text(report).endswith("— clean")

    def test_json_report_round_trips(self, tmp_path):
        _write_bad_module(tmp_path)
        report = LintRunner(root=tmp_path).run([tmp_path / "src"])
        data = json.loads(render_json(report))
        assert data["ok"] is False
        assert data["files_checked"] == 1
        assert {f["code"] for f in data["findings"]} == {
            "RPL003", "RPL005", "RPL010",
        }
        assert all(f["fingerprint"] for f in data["findings"])


class TestCli:
    def test_exit_one_on_findings_then_zero_after_baseline(
        self, tmp_path, capsys
    ):
        _write_bad_module(tmp_path)
        argv = [str(tmp_path / "src"), "--root", str(tmp_path)]
        assert main(argv) == 1
        assert main(argv + ["--write-baseline"]) == 0
        assert main(argv) == 0
        assert main(argv + ["--no-baseline"]) == 1
        capsys.readouterr()

    def test_json_output_file(self, tmp_path, capsys):
        _write_bad_module(tmp_path)
        out = tmp_path / "reports" / "lint.json"
        code = main(
            [
                str(tmp_path / "src"),
                "--root", str(tmp_path),
                "--format", "json",
                "--output", str(out),
            ]
        )
        capsys.readouterr()
        assert code == 1
        data = json.loads(out.read_text(encoding="utf-8"))
        assert data["ok"] is False

    def test_select_restricts_rules(self, tmp_path, capsys):
        _write_bad_module(tmp_path)
        code = main(
            [
                str(tmp_path / "src"),
                "--root", str(tmp_path),
                "--select", "RPL003",
                "--format", "json",
                "--output", str(tmp_path / "lint.json"),
            ]
        )
        capsys.readouterr()
        assert code == 1
        data = json.loads((tmp_path / "lint.json").read_text())
        assert {f["code"] for f in data["findings"]} == {"RPL003"}

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "RPL001" in out and "RPL012" in out

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            main([str(tmp_path / "absent"), "--root", str(tmp_path)])
        assert exc.value.code == 2
        capsys.readouterr()

    def test_unknown_select_code_is_usage_error(self, tmp_path, capsys):
        (tmp_path / "src").mkdir()
        with pytest.raises(SystemExit) as exc:
            main(
                [str(tmp_path / "src"), "--root", str(tmp_path),
                 "--select", "RPL999"]
            )
        assert exc.value.code == 2
        capsys.readouterr()


class TestWallClockDatetime:
    def test_flags_datetime_now_and_friends(self):
        src = """\
        import datetime
        a = datetime.datetime.now()
        b = datetime.datetime.utcnow()
        c = datetime.date.today()
        """
        assert codes(src) == ["RPL014", "RPL014", "RPL014"]

    def test_flags_from_import_spelling(self):
        src = """\
        from datetime import datetime
        stamp = datetime.now()
        """
        assert codes(src) == ["RPL014"]

    def test_flags_aliased_import_that_would_dodge_the_match(self):
        src = "from datetime import datetime as dt\n"
        assert codes(src) == ["RPL014"]

    def test_constructing_datetimes_is_fine(self):
        src = """\
        from datetime import datetime, timezone, timedelta
        epoch = datetime(1970, 1, 1, tzinfo=timezone.utc)
        later = epoch + timedelta(seconds=5)
        parsed = datetime.fromisoformat("2026-01-01T00:00:00")
        """
        assert codes(src) == []

    def test_perf_counter_is_the_blessed_timer(self):
        src = """\
        import time
        start = time.perf_counter()
        elapsed = time.perf_counter() - start
        """
        assert codes(src) == []

    def test_scoped_to_library_code(self):
        src = "from datetime import datetime\nx = datetime.now()\n"
        assert codes(src, path="benchmarks/bench_x.py") == []
        assert codes(src, path="tests/test_x.py") == []

    def test_suppressible_for_metadata_timestamps(self):
        src = (
            "from datetime import datetime, timezone\n"
            "# reprolint: disable-next-line=RPL014\n"
            "stamp = datetime.now(timezone.utc).isoformat()\n"
        )
        assert codes(src) == []


class TestPipelineInternalConstruction:
    def test_flags_direct_internal_construction(self):
        src = """\
        from repro.core.discretize import TreeDiscretizer
        from repro.core.mining.bitset import BitsetEngine
        from repro.core.mining.fpgrowth import mine_fpgrowth

        tree = TreeDiscretizer(0.1).fit(table, "age", outcome)
        engine = BitsetEngine(universe)
        mined = mine_fpgrowth(universe, 0.05)
        """
        assert codes(src) == ["RPL015", "RPL015", "RPL015"]

    def test_flags_attribute_qualified_calls(self):
        src = """\
        import repro.core.mining.parallel as par
        shards = par.mine_parallel(universe, 0.05)
        """
        assert codes(src) == ["RPL015"]

    def test_front_doors_stay_callable(self):
        src = """\
        from repro import ExploreSession, HDivExplorer
        from repro.core.discretize import CombinedTreeDiscretizer
        from repro.core.mining.transactions import mine

        session = ExploreSession(table, outcome)
        result = session.explore(0.05)
        cold = HDivExplorer(0.05).explore(table, outcome)
        mined = mine(universe, 0.05, "bitset")
        combined = CombinedTreeDiscretizer(0.1).fit(table, outcome)
        """
        assert codes(src) == []

    def test_imports_alone_do_not_fire(self):
        src = """\
        from repro.core.discretize import TreeDiscretizer
        from repro.core.mining.bitset import BitsetEngine
        """
        assert codes(src) == []

    def test_core_tests_and_examples_are_exempt(self):
        src = """\
        from repro.core.discretize import TreeDiscretizer
        tree = TreeDiscretizer(0.1).fit(table, "age", outcome)
        """
        assert codes(src, path="src/repro/core/hexplorer.py") == []
        assert codes(src, path="tests/test_discretize.py") == []
        assert codes(src, path="examples/custom_tree.py") == []
        assert codes(src, path="benchmarks/bench_x.py") == ["RPL015"]

    def test_suppressible_with_justification(self):
        src = (
            "from repro.core.mining.bitset import BitsetEngine\n"
            "# reprolint: disable-next-line=RPL015 (cache probe)\n"
            "engine = BitsetEngine(universe)\n"
        )
        assert codes(src) == []


class TestRawProgressChannel:
    def test_flags_raw_queue_in_multiprocessing_module(self):
        src = """\
        import multiprocessing as mp

        def fan_out():
            ctx = mp.get_context("fork")
            return ctx.Queue(), mp.SimpleQueue()
        """
        assert codes(src) == ["RPL017", "RPL017"]

    def test_sanctioned_constructor_stays_silent(self):
        src = """\
        import multiprocessing as mp
        from repro.obs.events import worker_event_queue

        def fan_out():
            ctx = mp.get_context("fork")
            return worker_event_queue(ctx)
        """
        assert codes(src) == []

    def test_scoped_to_multiprocessing_library_modules(self):
        plain = """\
        import queue

        def buffered():
            return queue.Queue()
        """
        # No multiprocessing import — not a worker fan-out module.
        assert codes(plain) == []
        mp_src = """\
        import multiprocessing as mp

        def fan_out():
            return mp.Queue()
        """
        # repro.obs itself is the sanctioned construction site.
        assert codes(mp_src, path="src/repro/obs/events.py") == []
        assert codes(mp_src, path="tests/test_x.py") == []
        assert codes(mp_src) == ["RPL017"]


class TestCrashHook:
    def test_flags_excepthook_assignment_and_faulthandler(self):
        src = """\
        import faulthandler
        import sys

        def arm(hook):
            sys.excepthook = hook
            faulthandler.enable()
            faulthandler.register(10)
        """
        assert codes(src) == ["RPL018", "RPL018", "RPL018"]

    def test_non_installing_faulthandler_calls_stay_silent(self):
        src = """\
        import faulthandler

        def disarm():
            faulthandler.disable()
            return faulthandler.is_enabled()
        """
        assert codes(src) == []

    def test_bundle_module_and_tests_are_exempt(self):
        src = """\
        import sys

        def arm(hook):
            sys.excepthook = hook
        """
        assert codes(src, path="src/repro/obs/bundle.py") == []
        assert codes(src, path="tests/test_x.py") == []
        assert codes(src) == ["RPL018"]


class TestProfilerHook:
    def test_flags_trace_hooks_and_frame_reader(self):
        src = """\
        import sys
        import threading

        def hook(frame, event, arg):
            return None

        def profile_everything():
            sys.setprofile(hook)
            sys.settrace(hook)
            threading.setprofile(hook)
            threading.settrace(hook)
            return sys._current_frames()
        """
        assert codes(src) == ["RPL019"] * 5

    def test_other_sys_and_threading_calls_stay_silent(self):
        src = """\
        import sys
        import threading

        def fine():
            sys.setrecursionlimit(10_000)
            sys.settrace  # attribute access, not a call
            return threading.get_ident()
        """
        assert codes(src) == []

    def test_cpuprof_owner_and_tests_are_exempt(self):
        src = """\
        import sys

        def sample():
            return sys._current_frames()
        """
        assert codes(src, path="src/repro/obs/cpuprof.py") == []
        assert codes(src, path="tests/test_x.py") == []
        assert codes(src) == ["RPL019"]

    def test_pragma_suppresses(self):
        src = (
            "import sys\n"
            "frames = sys._current_frames()"
            "  # reprolint: disable=RPL019\n"
        )
        assert codes(src) == []
