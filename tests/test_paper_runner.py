"""Tests for the one-shot paper-artifact runner."""

import pytest

from repro.experiments.paper import main


@pytest.mark.slow
def test_fast_pass_selected_artifacts(tmp_path, capsys):
    code = main(
        ["--fast", "--only", "table1", "figure6", "--out", str(tmp_path)]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert "Slice Finder" in out
    assert (tmp_path / "table1.txt").exists()
    assert (tmp_path / "figure6.txt").exists()


@pytest.mark.slow
def test_unknown_only_filter_runs_nothing(capsys):
    assert main(["--fast", "--only", "nonexistent"]) == 0
    assert "=" * 10 not in capsys.readouterr().out
