"""Tests for the forensics tools (``repro.obs.diff``/``doctor``).

Covers profile loading from all three artifact kinds, the noise-aware
status policy, the acceptance contract — a diff of two bundles with an
injected slowdown attributes the regression to that phase in both text
and JSON — and the doctor's health-check registry, each built-in check
on synthetic unhealthy bundles, and both CLIs' exit codes.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.config import ExploreConfig
from repro.core.hexplorer import HDivExplorer
from repro.obs import EventStream, ObsCollector, RunBundle
from repro.obs.bundle import Bundle
from repro.obs.diff import (
    DIFF_SCHEMA,
    RunProfile,
    _status,
    diff_payload,
    load_profile,
    main as diff_main,
    render_diff_text,
)
from repro.obs.doctor import (
    DOCTOR_SCHEMA,
    DoctorPolicy,
    Finding,
    diagnose,
    doctor_payload,
    health_check,
    main as doctor_main,
    registered_checks,
    render_doctor_text,
)
from repro.obs.perfdb import GatePolicy


def make_bundle(pocket_data, directory, slow_mine=None):
    """Capture an explorer run bundle, optionally injecting extra
    wall time into a synthetic trailing ``mine`` span."""
    table, errors = pocket_data
    obs = ObsCollector(events=EventStream())
    config = ExploreConfig(min_support=0.1, tree_support=0.1, obs=obs)
    with RunBundle(
        directory, name="fig2", config=config.to_dict(), obs=obs,
        dataset=table,
    ):
        HDivExplorer(config).explore(table, errors)
        if slow_mine is not None:
            with obs.span("mine"):
                pass
            obs.roots[-1].elapsed_seconds = slow_mine
    return directory


def profile(**kw):
    base = dict(
        label="p", source="test", phases={}, counters={}, gauges={},
        mem_peaks={}, worker_seconds={},
    )
    base.update(kw)
    return RunProfile(**base)


class TestStatusPolicy:
    POLICY = GatePolicy()  # rel 0.5, abs 0.05

    def test_needs_both_thresholds(self):
        # Big relative but tiny absolute: noise, not a regression.
        assert _status(0.001, 0.01, self.POLICY) == "ok"
        # Big absolute but small relative: within tolerance.
        assert _status(10.0, 10.2, self.POLICY) == "ok"
        # Both: regression.
        assert _status(0.1, 0.5, self.POLICY) == "regression"

    def test_improvement_and_add_remove(self):
        assert _status(0.5, 0.1, self.POLICY) == "improved"
        assert _status(None, 0.1, self.POLICY) == "added"
        assert _status(0.1, None, self.POLICY) == "removed"


class TestRunProfile:
    def test_hit_rate(self):
        p = profile(counters={"cover_cache.hits": 30, "cover_cache.misses": 10})
        assert p.hit_rate() == pytest.approx(0.75)
        assert profile().hit_rate() is None
        assert profile(counters={"cover_cache.hits": 0,
                                 "cover_cache.misses": 0}).hit_rate() is None

    def test_imbalance(self):
        p = profile(worker_seconds={1: 1.0, 2: 1.0, 3: 4.0})
        assert p.imbalance() == pytest.approx(2.0)
        assert profile(worker_seconds={1: 1.0}).imbalance() is None


class TestDiffAttribution:
    """The acceptance contract: injected slowdown -> attributed phase."""

    @pytest.fixture
    def bundles(self, pocket_data, tmp_path):
        a = make_bundle(pocket_data, tmp_path / "a")
        b = make_bundle(pocket_data, tmp_path / "b", slow_mine=0.5)
        return a, b

    def test_json_attributes_regression_to_injected_phase(self, bundles):
        a, b = bundles
        payload = diff_payload(load_profile(str(a)), load_profile(str(b)))
        assert payload["schema"] == DIFF_SCHEMA
        assert payload["summary"]["regressions"] >= 1
        regressed = {
            r["path"] for r in payload["phases"]
            if r["status"] == "regression"
        }
        assert "mine" in regressed
        attributed = {e["path"] for e in payload["attribution"]}
        assert "mine" in attributed
        mine = next(e for e in payload["attribution"] if e["path"] == "mine")
        assert mine["delta_seconds"] >= 0.4
        assert mine["suspects"]  # always names at least one suspect

    def test_text_report_names_regression_and_fails(self, bundles):
        a, b = bundles
        payload = diff_payload(load_profile(str(a)), load_profile(str(b)))
        text = render_diff_text(payload)
        assert "mine" in text
        assert "regression" in text
        assert "attribution:" in text
        assert "=> FAIL" in text

    def test_cli_text_and_json_exit_1(self, bundles, capsys):
        a, b = bundles
        assert diff_main([str(a), str(b)]) == 1
        assert "=> FAIL" in capsys.readouterr().out
        assert diff_main([str(a), str(b), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["regressions"] >= 1
        assert any(e["path"] == "mine" for e in payload["attribution"])

    def test_self_diff_passes(self, bundles, capsys):
        a, _ = bundles
        assert diff_main([str(a), str(a)]) == 0
        assert "=> PASS" in capsys.readouterr().out

    def test_cli_load_error_exits_2(self, tmp_path, capsys):
        assert diff_main([str(tmp_path / "no"), str(tmp_path / "pe")]) == 2
        assert "error:" in capsys.readouterr().err


class TestDiffSignals:
    def test_cache_hit_rate_drop_named_for_mine_phases(self):
        a = profile(
            phases={"explore.mine": 0.1},
            counters={"cover_cache.hits": 90, "cover_cache.misses": 10},
        )
        b = profile(
            phases={"explore.mine": 0.5},
            counters={"cover_cache.hits": 10, "cover_cache.misses": 90},
        )
        payload = diff_payload(a, b)
        (entry,) = payload["attribution"]
        assert any("hit rate dropped" in s for s in entry["suspects"])
        derived = payload["derived"]["cache_hit_rate"]
        assert derived["a"] == pytest.approx(0.9)
        assert derived["b"] == pytest.approx(0.1)

    def test_worker_imbalance_growth_named(self):
        a = profile(
            phases={"mine": 0.1}, worker_seconds={1: 1.0, 2: 1.0},
        )
        b = profile(
            phases={"mine": 0.5}, worker_seconds={1: 3.0, 2: 0.5},
        )
        payload = diff_payload(a, b)
        (entry,) = payload["attribution"]
        assert any("imbalance grew" in s for s in entry["suspects"])

    def test_counter_suspects_respect_phase_hints(self):
        a = profile(
            phases={"mine": 0.1},
            counters={"mining.candidates": 100, "discretize.splits": 5},
        )
        b = profile(
            phases={"mine": 0.5},
            counters={"mining.candidates": 500, "discretize.splits": 50},
        )
        (entry,) = diff_payload(a, b)["attribution"]
        joined = " ".join(entry["suspects"])
        assert "mining.candidates" in joined
        # discretize.* is not hinted for a mine regression.
        assert "discretize.splits" not in joined

    def test_fallback_suspect_when_nothing_moved(self):
        a = profile(phases={"mine": 0.1})
        b = profile(phases={"mine": 0.5})
        (entry,) = diff_payload(a, b)["attribution"]
        assert any("no correlated counter shift" in s
                   for s in entry["suspects"])


class TestLoadProfile:
    def test_run_log_source(self, pocket_data, tmp_path):
        make_bundle(pocket_data, tmp_path / "b")
        p = load_profile(str(tmp_path / "b" / "run_log.jsonl"))
        assert p.source == "run-log"
        assert {"discretize", "encode", "mine"} <= set(p.phases)
        assert p.counters  # from the terminal counters snapshot

    def test_bundle_source_uses_trace_phases(self, pocket_data, tmp_path):
        make_bundle(pocket_data, tmp_path / "b")
        p = load_profile(str(tmp_path / "b"))
        assert p.source == "bundle"
        assert p.phases.keys() == load_profile(
            str(tmp_path / "b" / "run_log.jsonl")
        ).phases.keys()

    def test_perfdb_source_with_fingerprint_pin(self, tmp_path):
        from repro.obs import bench_payload
        from repro.obs.perfdb import record_from_payload

        obs = ObsCollector()
        with obs.span("mine"):
            pass
        record = record_from_payload(
            bench_payload("unit", obs=obs, config={"support": 0.1})
        )
        history = tmp_path / "history.jsonl"
        history.write_text(json.dumps(record) + "\n")
        p = load_profile(f"{history}@{record['config_fingerprint']}")
        assert p.source == "perfdb"
        assert "mine" in p.phases
        with pytest.raises(ValueError, match="no perfdb records"):
            load_profile(f"{history}@deadbeefdeadbeef")

    def test_missing_spec_raises(self, tmp_path):
        with pytest.raises(ValueError, match="no such bundle"):
            load_profile(str(tmp_path / "nope"))
        with pytest.raises(ValueError, match="no manifest"):
            load_profile(str(tmp_path))


def synthetic_bundle(
    manifest=None, records=None, metrics=None, perfdb=None, crash=None,
):
    base_manifest = {
        "schema": "repro.obs/bundle@1", "name": "synth", "status": "ok",
        "events": {"emitted": 0, "retained": 0, "dropped": 0},
    }
    base_manifest.update(manifest or {})
    return Bundle(
        directory=Path("synth"),
        manifest=base_manifest,
        records=[{"kind": "header"}] + list(records or []),
        trace={},
        metrics=metrics or {},
        perfdb=perfdb,
        crash=crash,
    )


class TestDoctorChecks:
    def test_healthy_explorer_bundle_has_zero_findings(
        self, pocket_data, tmp_path
    ):
        from repro.obs import load_bundle

        make_bundle(pocket_data, tmp_path / "b")
        assert diagnose(load_bundle(tmp_path / "b")) == []

    def test_registry_lists_builtin_checks(self):
        checks = registered_checks()
        assert {"run-status", "dropped-events", "seq-gaps",
                "cache-hit-rate", "shard-skew", "mem-divergence",
                "deadline"} <= set(checks)
        assert list(checks) == sorted(checks)

    def test_unknown_check_rejected(self):
        with pytest.raises(ValueError, match="unknown checks"):
            diagnose(synthetic_bundle(), checks=["no-such-check"])

    def test_crashed_run_is_error_cancelled_is_warning(self):
        crashed = synthetic_bundle(
            manifest={"status": "crashed"},
            crash={"kind": "exception", "type": "ValueError",
                   "message": "x", "last_events": []},
        )
        (finding,) = diagnose(crashed, checks=["run-status"])
        assert finding.severity == "error"
        assert "ValueError" in finding.message
        cancelled = synthetic_bundle(
            manifest={"status": "cancelled"},
            crash={"kind": "cancelled", "reason": "deadline",
                   "where": "mine", "elapsed_seconds": 1.0,
                   "last_events": []},
        )
        (finding,) = diagnose(cancelled, checks=["run-status"])
        assert finding.severity == "warning"
        assert "deadline" in finding.message

    def test_dropped_events_warning(self):
        bundle = synthetic_bundle(
            manifest={"events": {"emitted": 100, "retained": 40,
                                 "dropped": 60}},
        )
        (finding,) = diagnose(bundle, checks=["dropped-events"])
        assert finding.severity == "warning"
        assert "60" in finding.message

    def test_seq_gap_and_lost_head_are_errors(self):
        torn = synthetic_bundle(
            records=[{"kind": "heartbeat", "seq": s} for s in (0, 1, 3, 4)],
        )
        (finding,) = diagnose(torn, checks=["seq-gaps"])
        assert finding.severity == "error"
        assert "missing" in finding.message
        headless = synthetic_bundle(
            records=[{"kind": "heartbeat", "seq": s} for s in (5, 6, 7)],
        )
        (finding,) = diagnose(headless, checks=["seq-gaps"])
        assert "not 0" in finding.message

    def test_cache_hit_rate_floor(self):
        cold = synthetic_bundle(
            metrics={"counters": {"cover_cache.hits": 1,
                                  "cover_cache.misses": 99}},
        )
        (finding,) = diagnose(cold, checks=["cache-hit-rate"])
        assert "below" in finding.message
        untouched = synthetic_bundle()
        assert diagnose(untouched, checks=["cache-hit-rate"]) == []

    def test_shard_skew_warning(self):
        def span(worker, t0, t1):
            return {"kind": "worker_span", "worker": worker,
                    "attrs": {"t0": t0, "t1": t1}}

        skewed = synthetic_bundle(
            records=[span(1, 0.0, 4.0), span(2, 0.0, 0.5),
                     span(3, 0.0, 0.5)],
        )
        (finding,) = diagnose(skewed, checks=["shard-skew"])
        assert "worker 1" in finding.message
        balanced = synthetic_bundle(
            records=[span(1, 0.0, 1.0), span(2, 0.0, 1.0)],
        )
        assert diagnose(balanced, checks=["shard-skew"]) == []

    def test_mem_divergence_warning(self):
        diverged = synthetic_bundle(
            metrics={"gauges": {"mem.rss_max_kb": 1_000_000}},
            perfdb={"mem_peaks": {"mine": 10_000_000}},
        )
        (finding,) = diagnose(diverged, checks=["mem-divergence"])
        assert "RSS" in finding.message
        close = synthetic_bundle(
            metrics={"gauges": {"mem.rss_max_kb": 10_000}},
            perfdb={"mem_peaks": {"mine": 10_000_000}},
        )
        assert diagnose(close, checks=["mem-divergence"]) == []

    def test_deadline_expiry_error_and_near_miss_warning(self):
        expired = synthetic_bundle(
            manifest={"status": "cancelled", "deadline_s": 5.0},
            crash={"kind": "cancelled", "reason": "deadline",
                   "where": "mine", "last_events": []},
        )
        (finding,) = diagnose(expired, checks=["deadline"])
        assert finding.severity == "error"
        near = synthetic_bundle(
            manifest={"deadline_s": 10.0, "elapsed_seconds": 9.5},
        )
        (finding,) = diagnose(near, checks=["deadline"])
        assert finding.severity == "warning"
        comfortable = synthetic_bundle(
            manifest={"deadline_s": 10.0, "elapsed_seconds": 2.0},
        )
        assert diagnose(comfortable, checks=["deadline"]) == []

    def test_custom_check_registers_and_runs(self):
        @health_check("always-sad")
        def _always_sad(bundle, policy):
            yield Finding("always-sad", "info", "synthetic finding")

        try:
            assert "always-sad" in registered_checks()
            findings = diagnose(synthetic_bundle(), checks=["always-sad"])
            assert [f.check for f in findings] == ["always-sad"]
        finally:
            from repro.obs import doctor

            del doctor._REGISTRY["always-sad"]

    def test_finding_validates_severity(self):
        with pytest.raises(ValueError):
            Finding("x", "catastrophic", "nope")


class TestDoctorReport:
    def test_payload_summary_worst_severity(self):
        findings = [
            Finding("a", "info", "i"), Finding("b", "warning", "w"),
        ]
        payload = doctor_payload("unit", findings)
        assert payload["schema"] == DOCTOR_SCHEMA
        assert payload["summary"] == {"findings": 2, "worst": "warning"}

    def test_text_healthy_and_unhealthy(self):
        healthy = render_doctor_text(doctor_payload("unit", []))
        assert "=> healthy" in healthy
        sick = render_doctor_text(
            doctor_payload("unit", [Finding("a", "error", "broken")])
        )
        assert "[error  ] a: broken" in sick
        assert "=> 1 finding (worst: error)" in sick


class TestDoctorCli:
    def test_healthy_bundle_exits_0(self, pocket_data, tmp_path, capsys):
        make_bundle(pocket_data, tmp_path / "b")
        assert doctor_main([str(tmp_path / "b")]) == 0
        assert "=> healthy" in capsys.readouterr().out

    def test_cancelled_bundle_exits_1_with_findings(
        self, pocket_data, tmp_path, capsys
    ):
        table, errors = pocket_data
        config = ExploreConfig(
            min_support=0.1, tree_support=0.1, deadline_s=1e-6,
            bundle_dir=str(tmp_path / "b"),
        )
        from repro.obs import RunCancelled

        with pytest.raises(RunCancelled):
            HDivExplorer(config).explore(table, errors)
        assert doctor_main([str(tmp_path / "b"), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        checks = {f["check"] for f in payload["findings"]}
        assert "run-status" in checks and "deadline" in checks

    def test_tampered_bundle_reports_integrity_findings(
        self, pocket_data, tmp_path, capsys
    ):
        make_bundle(pocket_data, tmp_path / "b")
        metrics = tmp_path / "b" / "metrics.json"
        metrics.write_text(metrics.read_text() + " ")
        assert doctor_main([str(tmp_path / "b")]) == 1
        assert "bundle-integrity" in capsys.readouterr().out

    def test_missing_bundle_exits_2(self, tmp_path, capsys):
        assert doctor_main([str(tmp_path / "gone")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_check_selection(self, pocket_data, tmp_path, capsys):
        make_bundle(pocket_data, tmp_path / "b")
        code = doctor_main([str(tmp_path / "b"), "--check", "run-status"])
        assert code == 0
