"""Unit tests for polarity pruning."""

import numpy as np
import pytest

from repro.core.discretize import TreeDiscretizer
from repro.core.items import CategoricalItem, IntervalItem
from repro.core.mining import EncodedUniverse, generalized_universe, mine
from repro.core.polarity import item_polarities, mine_with_polarity
from repro.tabular import Table


@pytest.fixture
def signed_universe(rng):
    """x>0 pushes the outcome up, x<=0 pushes it down; cat is neutral."""
    n = 500
    x = rng.uniform(-1, 1, n)
    cat = rng.choice(["a", "b"], n)
    o = np.where(x > 0, 0.9, 0.1)
    table = Table({"x": x, "cat": cat})
    items = [
        IntervalItem("x", high=0),
        IntervalItem("x", low=0),
        CategoricalItem("cat", "a"),
        CategoricalItem("cat", "b"),
    ]
    return EncodedUniverse.from_table(table, items, o)


class TestPolarities:
    def test_signs(self, signed_universe):
        p = item_polarities(signed_universe)
        assert p[0] == -1  # x<=0 lowers the mean
        assert p[1] == +1  # x>0 raises it
        assert p[2] == 0 and p[3] == 0  # categorical items neutral

    def test_explicit_polarize_attributes(self, signed_universe):
        p = item_polarities(signed_universe, polarize_attributes=["cat"])
        assert p[0] == 0 and p[1] == 0  # interval items now neutral
        assert p[2] in (-1, 0, 1)

    def test_zero_divergence_is_neutral(self):
        table = Table({"x": [1.0, 2.0, 3.0, 4.0]})
        o = np.ones(4)
        universe = EncodedUniverse.from_table(
            table, [IntervalItem("x", high=2), IntervalItem("x", low=2)], o
        )
        assert item_polarities(universe) == [0, 0]


class TestMineWithPolarity:
    def test_subset_of_complete_search(self, signed_universe):
        complete = {m.ids for m in mine(signed_universe, 0.05)}
        pruned = {m.ids for m in mine_with_polarity(signed_universe, 0.05)}
        assert pruned <= complete

    def test_mixed_polarity_itemsets_pruned(self, signed_universe):
        pruned = mine_with_polarity(signed_universe, 0.01)
        polarities = item_polarities(signed_universe)
        for m in pruned:
            signs = {polarities[i] for i in m.ids} - {0}
            assert len(signs) <= 1, "mixed-polarity itemset survived"

    def test_neutral_items_in_both_runs(self, signed_universe):
        pruned = {m.ids for m in mine_with_polarity(signed_universe, 0.05)}
        # cat=a combined with the positive item AND with the negative one.
        assert frozenset({1, 2}) in pruned
        assert frozenset({0, 2}) in pruned

    def test_stats_match_complete_search(self, signed_universe):
        complete = {m.ids: m.stats for m in mine(signed_universe, 0.05)}
        for m in mine_with_polarity(signed_universe, 0.05):
            assert complete[m.ids].count == m.stats.count
            assert complete[m.ids].total == pytest.approx(m.stats.total)

    def test_preserves_max_divergence_on_pocket(self, pocket_data):
        table, errors = pocket_data
        gamma = TreeDiscretizer(0.1).hierarchy_set(table, errors)
        universe = generalized_universe(table, errors, gamma)
        global_mean = universe.global_stats().mean

        def best(mined):
            return max(
                abs(m.stats.mean - global_mean) for m in mined
            )

        complete = mine(universe, 0.05)
        pruned = mine_with_polarity(universe, 0.05)
        # The pocket is one-signed, so pruning must not lose it.
        assert best(pruned) == pytest.approx(best(complete))

    def test_backends_agree(self, signed_universe):
        fp = {m.ids for m in mine_with_polarity(signed_universe, 0.05, "fpgrowth")}
        ap = {m.ids for m in mine_with_polarity(signed_universe, 0.05, "apriori")}
        assert fp == ap
