"""Unit tests for divergence statistics; Welch t cross-checked vs scipy."""

import math

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.core.divergence import (
    OutcomeStats,
    divergence,
    entropy,
    welch_degrees_of_freedom,
    welch_t,
)


class TestOutcomeStats:
    def test_from_outcomes_plain(self):
        s = OutcomeStats.from_outcomes(np.array([1.0, 0.0, 1.0]))
        assert s.count == 3 and s.n == 3
        assert s.total == 2.0 and s.total_sq == 2.0
        assert s.mean == pytest.approx(2 / 3)

    def test_from_outcomes_with_nan(self):
        s = OutcomeStats.from_outcomes(np.array([1.0, np.nan, 3.0]))
        assert s.count == 3 and s.n == 2
        assert s.total == 4.0 and s.total_sq == 10.0

    def test_from_outcomes_masked(self):
        o = np.array([1.0, 2.0, 3.0])
        s = OutcomeStats.from_outcomes(o, mask=np.array([True, False, True]))
        assert s.count == 2 and s.total == 4.0

    def test_empty(self):
        s = OutcomeStats.empty()
        assert math.isnan(s.mean)
        assert math.isnan(s.variance)

    def test_variance_matches_numpy(self):
        data = np.array([1.0, 4.0, 4.0, 9.0, 2.5])
        s = OutcomeStats.from_outcomes(data)
        assert s.variance == pytest.approx(float(np.var(data, ddof=1)))

    def test_variance_single_value_nan(self):
        s = OutcomeStats.from_outcomes(np.array([5.0]))
        assert math.isnan(s.variance)

    def test_variance_clamped_nonnegative(self):
        # Cancellation-prone constant data.
        data = np.full(100, 1e8)
        s = OutcomeStats.from_outcomes(data)
        assert s.variance >= 0.0

    def test_merge_is_concat(self, rng):
        a = rng.normal(size=40)
        b = rng.normal(size=60)
        merged = OutcomeStats.from_outcomes(a).merge(
            OutcomeStats.from_outcomes(b)
        )
        direct = OutcomeStats.from_outcomes(np.concatenate([a, b]))
        assert merged.count == direct.count
        assert merged.mean == pytest.approx(direct.mean)
        assert merged.variance == pytest.approx(direct.variance)


class TestDivergence:
    def test_divergence_definition(self):
        sub = OutcomeStats.from_outcomes(np.array([1.0, 1.0, 0.0]))
        full = OutcomeStats.from_outcomes(np.array([1.0, 1.0, 0.0, 0.0, 0.0]))
        assert divergence(sub, full) == pytest.approx(2 / 3 - 2 / 5)

    def test_divergence_nan_when_undefined(self):
        sub = OutcomeStats.empty()
        full = OutcomeStats.from_outcomes(np.array([1.0]))
        assert math.isnan(divergence(sub, full))


class TestWelch:
    def test_t_matches_scipy(self, rng):
        a = rng.normal(0.3, 1.0, 80)
        b = rng.normal(0.0, 2.0, 300)
        ours = welch_t(
            OutcomeStats.from_outcomes(a), OutcomeStats.from_outcomes(b)
        )
        ref = scipy_stats.ttest_ind(a, b, equal_var=False)
        assert ours == pytest.approx(abs(ref.statistic), rel=1e-10)

    def test_dof_matches_scipy(self, rng):
        a = rng.normal(0.0, 1.0, 50)
        b = rng.normal(0.0, 3.0, 200)
        ours = welch_degrees_of_freedom(
            OutcomeStats.from_outcomes(a), OutcomeStats.from_outcomes(b)
        )
        ref = scipy_stats.ttest_ind(a, b, equal_var=False)
        assert ours == pytest.approx(ref.df, rel=1e-10)

    def test_t_nan_for_tiny_groups(self):
        tiny = OutcomeStats.from_outcomes(np.array([1.0]))
        big = OutcomeStats.from_outcomes(np.array([1.0, 0.0, 1.0]))
        assert math.isnan(welch_t(tiny, big))

    def test_t_zero_variance_same_mean(self):
        a = OutcomeStats.from_outcomes(np.full(5, 2.0))
        b = OutcomeStats.from_outcomes(np.full(9, 2.0))
        assert welch_t(a, b) == 0.0

    def test_t_zero_variance_different_mean_inf(self):
        a = OutcomeStats.from_outcomes(np.full(5, 2.0))
        b = OutcomeStats.from_outcomes(np.full(9, 3.0))
        assert math.isinf(welch_t(a, b))

    def test_t_is_nonnegative(self, rng):
        a = OutcomeStats.from_outcomes(rng.normal(-5, 1, 30))
        b = OutcomeStats.from_outcomes(rng.normal(5, 1, 30))
        assert welch_t(a, b) >= 0.0


class TestEntropy:
    def test_uniform_is_log2(self):
        s = OutcomeStats.from_outcomes(np.array([1.0, 0.0]))
        assert entropy(s) == pytest.approx(math.log(2))

    def test_pure_is_zero(self):
        assert entropy(OutcomeStats.from_outcomes(np.ones(10))) == 0.0
        assert entropy(OutcomeStats.from_outcomes(np.zeros(10))) == 0.0

    def test_empty_is_zero(self):
        assert entropy(OutcomeStats.empty()) == 0.0

    def test_symmetry(self):
        p30 = OutcomeStats.from_outcomes(
            np.array([1.0] * 3 + [0.0] * 7)
        )
        p70 = OutcomeStats.from_outcomes(
            np.array([1.0] * 7 + [0.0] * 3)
        )
        assert entropy(p30) == pytest.approx(entropy(p70))
