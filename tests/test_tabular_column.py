"""Unit tests for repro.tabular.column."""

import math

import numpy as np
import pytest

from repro.tabular.column import (
    MISSING_CODE,
    CategoricalColumn,
    ContinuousColumn,
    infer_column,
)


class TestCategoricalColumn:
    def test_from_values_basic(self):
        col = CategoricalColumn.from_values("c", ["b", "a", "b", "c"])
        assert col.categories == ["a", "b", "c"]
        assert col.to_list() == ["b", "a", "b", "c"]
        assert len(col) == 4

    def test_from_values_missing(self):
        col = CategoricalColumn.from_values("c", ["x", None, float("nan"), "y"])
        assert col.to_list() == ["x", None, None, "y"]
        assert list(col.missing_mask()) == [False, True, True, False]

    def test_from_values_coerces_to_str(self):
        col = CategoricalColumn.from_values("c", [1, 2, 1])
        assert col.categories == ["1", "2"]
        assert col.to_list() == ["1", "2", "1"]

    def test_mask_eq(self):
        col = CategoricalColumn.from_values("c", ["a", "b", "a"])
        assert list(col.mask_eq("a")) == [True, False, True]

    def test_mask_eq_unknown_category_is_empty(self):
        col = CategoricalColumn.from_values("c", ["a", "b"])
        assert not col.mask_eq("zz").any()

    def test_mask_in(self):
        col = CategoricalColumn.from_values("c", ["a", "b", "c", "a"])
        assert list(col.mask_in({"a", "c"})) == [True, False, True, True]

    def test_mask_in_ignores_unknown(self):
        col = CategoricalColumn.from_values("c", ["a", "b"])
        assert list(col.mask_in({"a", "zz"})) == [True, False]

    def test_mask_in_all_unknown(self):
        col = CategoricalColumn.from_values("c", ["a", "b"])
        assert not col.mask_in({"zz"}).any()

    def test_missing_never_matches(self):
        col = CategoricalColumn.from_values("c", ["a", None, "a"])
        assert list(col.mask_eq("a")) == [True, False, True]
        assert list(col.mask_in({"a"})) == [True, False, True]

    def test_value_counts(self):
        col = CategoricalColumn.from_values("c", ["a", "b", "a", None])
        assert col.value_counts() == {"a": 2, "b": 1}

    def test_code_of(self):
        col = CategoricalColumn.from_values("c", ["b", "a"])
        assert col.code_of("a") == 0
        with pytest.raises(KeyError):
            col.code_of("zz")

    def test_take_and_select(self):
        col = CategoricalColumn.from_values("c", ["a", "b", "c"])
        assert col.take(np.array([2, 0])).to_list() == ["c", "a"]
        assert col.select(np.array([True, False, True])).to_list() == ["a", "c"]

    def test_rename_keeps_data(self):
        col = CategoricalColumn.from_values("c", ["a"])
        renamed = col.rename("d")
        assert renamed.name == "d"
        assert renamed.to_list() == ["a"]

    def test_duplicate_categories_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            CategoricalColumn("c", np.array([0]), ["a", "a"])

    def test_out_of_range_code_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            CategoricalColumn("c", np.array([2]), ["a", "b"])

    def test_bad_negative_code_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            CategoricalColumn("c", np.array([-2]), ["a"])

    def test_missing_code_allowed(self):
        col = CategoricalColumn("c", np.array([MISSING_CODE, 0]), ["a"])
        assert col.to_list() == [None, "a"]

    def test_two_dimensional_codes_rejected(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            CategoricalColumn("c", np.zeros((2, 2), dtype=int), ["a"])


class TestContinuousColumn:
    def test_basic(self):
        col = ContinuousColumn("x", np.array([1.0, 2.5]))
        assert len(col) == 2
        assert col.to_list() == [1.0, 2.5]

    def test_missing_is_nan(self):
        col = ContinuousColumn("x", np.array([1.0, np.nan]))
        assert col.to_list() == [1.0, None]
        assert list(col.missing_mask()) == [False, True]

    def test_mask_interval_default_half_open(self):
        col = ContinuousColumn("x", np.array([1.0, 2.0, 3.0]))
        # (1, 3]: excludes 1, includes 3.
        assert list(col.mask_interval(1.0, 3.0)) == [False, True, True]

    def test_mask_interval_closed_low(self):
        col = ContinuousColumn("x", np.array([1.0, 2.0]))
        assert list(col.mask_interval(1.0, 2.0, closed_low=True)) == [True, True]

    def test_mask_interval_open_high(self):
        col = ContinuousColumn("x", np.array([1.0, 2.0]))
        assert list(
            col.mask_interval(0.0, 2.0, closed_high=False)
        ) == [True, False]

    def test_mask_interval_infinite_bounds(self):
        col = ContinuousColumn("x", np.array([-1e300, 0.0, 1e300]))
        assert col.mask_interval(-math.inf, math.inf).all()

    def test_mask_interval_nan_never_matches(self):
        col = ContinuousColumn("x", np.array([np.nan, 1.0]))
        assert list(col.mask_interval(-math.inf, math.inf)) == [False, True]

    def test_min_max_skip_nan(self):
        col = ContinuousColumn("x", np.array([np.nan, 2.0, 5.0]))
        assert col.min() == 2.0
        assert col.max() == 5.0

    def test_min_max_all_nan(self):
        col = ContinuousColumn("x", np.array([np.nan]))
        assert math.isnan(col.min())
        assert math.isnan(col.max())

    def test_take_select(self):
        col = ContinuousColumn("x", np.array([1.0, 2.0, 3.0]))
        assert col.take(np.array([1])).to_list() == [2.0]
        assert col.select(np.array([False, True, True])).to_list() == [2.0, 3.0]

    def test_two_dimensional_rejected(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            ContinuousColumn("x", np.zeros((2, 2)))


class TestInferColumn:
    def test_numeric_becomes_continuous(self):
        col = infer_column("x", [1, 2, 3])
        assert isinstance(col, ContinuousColumn)

    def test_float_becomes_continuous(self):
        col = infer_column("x", np.array([1.5, 2.5]))
        assert isinstance(col, ContinuousColumn)

    def test_strings_become_categorical(self):
        col = infer_column("x", ["a", "b"])
        assert isinstance(col, CategoricalColumn)

    def test_bools_become_categorical(self):
        col = infer_column("x", [True, False])
        assert isinstance(col, CategoricalColumn)
        assert sorted(col.categories) == ["False", "True"]
