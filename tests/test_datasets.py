"""Tests for the dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    compas,
    compas_manual_items,
    dataset_names,
    folktables,
    load_dataset,
    synthetic_peak,
)
from repro.datasets.synthetic_peak import PEAK_MEAN, peak_flip_probability


class TestRegistry:
    def test_names(self):
        assert dataset_names() == [
            "adult", "bank", "compas", "folktables", "german", "intentions",
            "synthetic-peak", "wine",
        ]

    def test_load_unknown(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("mnist")

    def test_load_passes_kwargs(self):
        ds = load_dataset("german", n_rows=123)
        assert ds.table.n_rows == 123


class TestShapes:
    """Attribute shapes of Table II (row counts at default size)."""

    @pytest.mark.parametrize(
        "name, rows, num, cat",
        [
            ("adult", 45_222, 4, 7),
            ("bank", 45_211, 7, 8),
            ("compas", 6_172, 3, 3),
            ("german", 1_000, 7, 14),
            ("intentions", 12_330, 11, 6),
            ("synthetic-peak", 10_000, 3, 0),
            ("wine", 9_796, 11, 0),
        ],
    )
    def test_table2_shapes(self, name, rows, num, cat):
        ds = load_dataset(name)
        assert ds.table.n_rows == rows
        assert len(ds.continuous_features) == num
        assert len(ds.categorical_features) == cat

    def test_folktables_attributes(self):
        ds = folktables(n_rows=2_000)
        assert len(ds.feature_names) == 10
        assert len(ds.continuous_features) == 2
        assert len(ds.categorical_features) == 8


class TestDeterminism:
    @pytest.mark.parametrize("name", ["compas", "german", "synthetic-peak"])
    def test_same_seed_same_data(self, name):
        a = load_dataset(name)
        b = load_dataset(name)
        assert a.table.equals(b.table)

    def test_different_seed_different_data(self):
        a = synthetic_peak(seed=1)
        b = synthetic_peak(seed=2)
        assert not a.table.equals(b.table)


class TestSyntheticPeak:
    def test_flip_probability_peak_at_mean(self):
        assert peak_flip_probability(PEAK_MEAN[None, :])[0] == pytest.approx(1.0)

    def test_flip_probability_decays(self):
        near = peak_flip_probability(np.array([[0.0, 1.0, 2.5]]))[0]
        far = peak_flip_probability(np.array([[4.0, -4.0, -4.0]]))[0]
        assert near > far

    def test_coordinates_in_cube(self):
        ds = synthetic_peak(n_rows=500)
        for attr in ("a", "b", "c"):
            values = ds.table.continuous(attr).values
            assert values.min() >= -5.0 and values.max() <= 5.0

    def test_error_concentrated_at_peak(self):
        ds = synthetic_peak()
        errors = ds.outcome().values(ds.table)
        points = np.column_stack(
            [ds.table.continuous(a).values for a in ("a", "b", "c")]
        )
        near = np.linalg.norm(points - PEAK_MEAN, axis=1) < 1.0
        assert errors[near].mean() > 10 * errors[~near].mean()

    def test_global_error_rate_matches_gaussian_mass(self):
        # E[flip] = (2π)^(3/2) / 10³ ≈ 0.0157 over the [-5,5]³ cube.
        ds = synthetic_peak()
        errors = ds.outcome().values(ds.table)
        assert errors.mean() == pytest.approx(0.0157, abs=0.005)

    def test_labels_fair_coin(self):
        ds = synthetic_peak()
        labels = ds.table["class"].to_list()
        assert np.mean([v == "1" for v in labels]) == pytest.approx(0.5, abs=0.02)


class TestCompas:
    def test_global_fpr_calibrated(self):
        ds = compas()
        fpr = np.nanmean(ds.outcome().values(ds.table))
        assert fpr == pytest.approx(0.088, abs=0.01)

    def test_planted_fpr_structure(self):
        ds = compas()
        outcomes = ds.outcome().values(ds.table)
        priors = ds.table.continuous("#prior").values
        high = np.nanmean(outcomes[priors > 8])
        low = np.nanmean(outcomes[priors <= 3])
        assert high > low + 0.15

    def test_manual_items_cover(self):
        ds = compas()
        for attr, items in compas_manual_items().items():
            total = np.zeros(ds.table.n_rows, dtype=int)
            for item in items:
                total += item.mask(ds.table).astype(int)
            assert (total == 1).all(), attr

    def test_outcome_kind(self):
        ds = compas()
        out = ds.outcome()
        assert out.name == "fpr" and out.boolean


class TestFolktables:
    def test_hierarchies_present_and_valid(self):
        ds = folktables(n_rows=3_000)
        assert "OCCP" in ds.hierarchies and "POBP" in ds.hierarchies
        ds.hierarchies.validate(ds.table)

    def test_occupation_taxonomy_depth(self):
        ds = folktables(n_rows=3_000)
        h = ds.hierarchies["OCCP"]
        assert any(h.depth(item) == 2 for item in h.items())

    def test_planted_income_structure(self):
        ds = folktables(n_rows=10_000)
        income = ds.outcome().values(ds.table)
        occ = np.asarray(ds.table["OCCP"].to_list())
        age = ds.table.continuous("AGEP").values
        sex = np.asarray(ds.table["SEX"].to_list())
        manager = np.char.startswith(occ.astype(str), "MGR")
        planted = manager & (age >= 35) & (sex == "Male")
        assert np.nanmean(income[planted]) > np.nanmean(income) * 1.8

    def test_numeric_outcome(self):
        ds = folktables(n_rows=1_000)
        assert not ds.outcome().boolean


class TestUciGenerators:
    @pytest.mark.parametrize("name", ["adult", "bank", "german", "intentions", "wine"])
    def test_error_outcome_sane(self, name):
        ds = load_dataset(name, n_rows=2_000)
        err = np.nanmean(ds.outcome().values(ds.table))
        assert 0.02 < err < 0.3

    def test_label_and_pred_excluded_from_features(self):
        ds = load_dataset("adult", n_rows=500)
        assert "label" not in ds.feature_names
        assert "pred" not in ds.feature_names

    def test_fit_predictions_trains_forest(self):
        ds = load_dataset("german", n_rows=600, fit_predictions=True)
        err = np.nanmean(ds.outcome().values(ds.table))
        # A trained forest errs more than the synthetic 3%-noise model
        # but still far below chance.
        assert 0.02 < err < 0.45

    def test_planted_pocket_diverges(self):
        ds = load_dataset("wine", n_rows=5_000)
        errors = ds.outcome().values(ds.table)
        va = ds.table.continuous("volatile_acidity").values
        alc = ds.table.continuous("alcohol").values
        so2 = ds.table.continuous("total_sulfur_dioxide").values
        pocket = (va > 0.5) & (alc < 10.5) & (so2 > 120.0)
        assert errors[pocket].mean() > errors.mean() + 0.1
