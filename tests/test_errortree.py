"""Tests for the error-tree baseline."""

import numpy as np
import pytest

from repro.baselines import ErrorTree, ErrorTreeResult
from repro.core.outcomes import array_outcome
from repro.tabular import Table


@pytest.fixture
def peak_like(rng):
    n = 4000
    x = rng.uniform(-5, 5, n)
    y = rng.uniform(-5, 5, n)
    p = np.where((x > 0) & (x < 2) & (y > 1) & (y < 3), 0.6, 0.03)
    o = (rng.uniform(size=n) < p).astype(float)
    return Table({"x": x, "y": y}), o


def test_finds_the_pocket(peak_like):
    table, o = peak_like
    results = ErrorTree(min_support=0.05).find(table, o, k=3)
    assert all(isinstance(r, ErrorTreeResult) for r in results)
    best = results[0]
    assert best.divergence > 0.15
    assert best.mean_loss > 0.3


def test_leaves_do_not_overlap(peak_like):
    table, o = peak_like
    results = ErrorTree(min_support=0.1).find(table, o, k=100)
    total = np.zeros(table.n_rows, dtype=int)
    for r in results:
        total += r.itemset.mask(table).astype(int)
    assert total.max() <= 1


def test_ranked_by_abs_divergence(peak_like):
    table, o = peak_like
    results = ErrorTree(min_support=0.1).find(table, o, k=100)
    divs = [abs(r.divergence) for r in results]
    assert divs == sorted(divs, reverse=True)


def test_k_limits(peak_like):
    table, o = peak_like
    assert len(ErrorTree(min_support=0.2).find(table, o, k=2)) <= 2


def test_outcome_object(peak_like):
    table, o = peak_like
    results = ErrorTree(min_support=0.2).find(
        table, array_outcome(o, boolean=True)
    )
    assert results


def test_max_depth_respected(peak_like):
    table, o = peak_like
    results = ErrorTree(min_support=0.05, max_depth=1).find(table, o, k=10)
    assert all(len(r.itemset) <= 1 for r in results)


def test_compares_below_hierarchical(peak_like):
    """The error tree's best leaf does not beat H-DivExplorer at the
    same support — overlapping exploration dominates partitioning."""
    from repro.core.hexplorer import HDivExplorer

    table, o = peak_like
    tree_best = ErrorTree(min_support=0.05).find(table, o, k=1)[0]
    hier = HDivExplorer(0.05, tree_support=0.1).explore(table, o)
    assert hier.max_divergence() >= abs(tree_best.divergence) - 0.05
