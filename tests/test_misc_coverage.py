"""Targeted tests for remaining corners of the public surface."""

import numpy as np
import pytest

from repro import __version__
from repro.core.hierarchy import flat_hierarchy
from repro.core.items import IntervalItem
from repro.datasets import load_dataset
from repro.tabular import Table


def test_version_string():
    assert __version__.count(".") == 2


def test_flat_hierarchy_single_universal_item():
    universal = IntervalItem("x")
    h = flat_hierarchy("x", [universal])
    assert h.root == universal
    assert h.is_leaf(h.root)
    assert len(h) == 1


def test_public_api_exports():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), name


@pytest.mark.parametrize("name", ["adult", "intentions"])
def test_fit_predictions_small(name):
    ds = load_dataset(name, n_rows=400, fit_predictions=True)
    err = np.nanmean(ds.outcome().values(ds.table))
    assert 0.0 <= err < 0.5


def test_dataset_features_table_excludes_labels():
    ds = load_dataset("compas", n_rows=300)
    features = ds.features()
    assert "two_year_recid" not in features
    assert "predicted_recid" not in features
    assert features.n_rows == 300


def test_dataset_repr_counts():
    ds = load_dataset("compas", n_rows=300)
    assert "num=3" in repr(ds) and "cat=3" in repr(ds)


def test_outcome_factory_errors():
    from repro.datasets.base import Dataset

    ds = Dataset(
        name="broken",
        table=Table({"x": [1.0]}),
        outcome_kind="fpr",
        feature_names=["x"],
    )
    with pytest.raises(ValueError, match="y_true"):
        ds.outcome()
    ds2 = Dataset(
        name="broken2",
        table=Table({"x": [1.0]}),
        outcome_kind="numeric",
        feature_names=["x"],
    )
    with pytest.raises(ValueError, match="target"):
        ds2.outcome()
    ds3 = Dataset(
        name="broken3",
        table=Table({"x": [1.0]}),
        outcome_kind="magic",
        feature_names=["x"],
    )
    with pytest.raises(ValueError, match="unknown outcome kind"):
        ds3.outcome()


def test_cli_generate_seed(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "a.csv"
    out2 = tmp_path / "b.csv"
    main(["generate", "german", "--out", str(out), "--rows", "50",
          "--seed", "3"])
    main(["generate", "german", "--out", str(out2), "--rows", "50",
          "--seed", "3"])
    assert out.read_text() == out2.read_text()
