"""Tier-1 CI gate: the tree must be reprolint-clean.

Runs the full analyzer over ``src/`` and ``benchmarks/`` with the
checked-in baseline, exactly like ``make lint``, and fails on any
non-baselined finding. This is what turns the determinism/purity rules
from advice into an enforced invariant.
"""

from __future__ import annotations

from pathlib import Path

from repro.devtools import Baseline, LintRunner
from repro.devtools.suppressions import BASELINE_FILENAME

ROOT = Path(__file__).resolve().parents[1]


def run_gate():
    baseline = Baseline.load(ROOT / BASELINE_FILENAME)
    runner = LintRunner(root=ROOT, baseline=baseline)
    return runner.run([ROOT / "src", ROOT / "benchmarks"])


def test_tree_is_lint_clean():
    report = run_gate()
    details = "\n".join(f.render() for f in report.findings)
    assert report.ok, f"reprolint findings:\n{details}"


def test_gate_actually_covers_the_tree():
    report = run_gate()
    # 64 library modules + ~21 benchmark files at the time of writing;
    # a collapse in coverage means the walker broke, not that the tree
    # shrank.
    assert report.files_checked >= 80


def test_no_stale_baseline_entries():
    # Every baseline entry must still match a real finding — otherwise
    # the debt was paid down and the entry should be deleted
    # (python -m repro.devtools.lint --write-baseline).
    baseline = Baseline.load(ROOT / BASELINE_FILENAME)
    report = run_gate()
    assert len(baseline) == report.suppressed_baseline
