"""ExploreSession: cache invalidation, warm/cold bit-identity, sweeps.

The session's contract has two halves, each tested here:

* *identity* — a warm ``session.explore(config)`` is bit-identical
  (same subgroups, same floats, same order) to a cold
  ``HDivExplorer(config).explore(table, outcome)``, for serial and
  parallel runs, exact-support reuse and filter-derivation alike;
* *economy* — each config knob invalidates exactly the artifacts the
  invalidation table in :mod:`repro.core.session` promises, observed
  through the ``session.*`` hit/miss counters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ExploreConfig
from repro.core.hexplorer import HDivExplorer
from repro.core.outcomes import (
    Outcome,
    array_outcome,
    coerce_outcome,
    error_rate,
    numeric_outcome,
)
from repro.core.session import ExploreSession
from repro.obs import ObsCollector
from repro.tabular import Table


def exact_rows(result):
    """Every subgroup as exact-repr tuples — nan-safe bit-identity probe."""
    return [
        (
            str(r.itemset),
            r.count,
            r.length,
            repr(r.support),
            repr(r.mean),
            repr(r.divergence),
            repr(r.t),
        )
        for r in result
    ]


def cold(table, outcome, **kwargs):
    return HDivExplorer(ExploreConfig(**kwargs)).explore(table, outcome)


def session_deltas(obs, before):
    """Nonzero session.* counter movements since a snapshot."""
    out = {}
    for name, value in obs.counters.items():
        if name.startswith("session.") and value != before.get(name, 0):
            out[name] = value - before.get(name, 0)
    return out


@pytest.fixture
def obs_session(pocket_data):
    table, errors = pocket_data
    obs = ObsCollector()
    with ExploreSession(table, errors, obs=obs) as session:
        yield session, obs, table, errors


class TestWarmColdIdentity:
    def test_first_explore_matches_cold(self, obs_session):
        session, _obs, table, errors = obs_session
        warm = session.explore(min_support=0.05)
        assert exact_rows(warm) == exact_rows(cold(table, errors, min_support=0.05))

    def test_repeat_explore_is_identical(self, obs_session):
        session, _obs, _table, _errors = obs_session
        first = session.explore(min_support=0.05)
        again = session.explore(min_support=0.05)
        assert exact_rows(first) == exact_rows(again)

    def test_derived_support_matches_cold(self, obs_session):
        session, _obs, table, errors = obs_session
        session.explore(min_support=0.05)
        derived = session.explore(min_support=0.12)
        assert exact_rows(derived) == exact_rows(
            cold(table, errors, min_support=0.12)
        )

    @pytest.mark.parametrize("backend", ["fpgrowth", "apriori", "eclat", "bitset"])
    def test_every_backend_matches_cold(self, pocket_data, backend):
        table, errors = pocket_data
        with ExploreSession(table, errors) as session:
            warm = session.explore(min_support=0.1, backend=backend)
        assert exact_rows(warm) == exact_rows(
            cold(table, errors, min_support=0.1, backend=backend)
        )

    def test_parallel_matches_cold(self, pocket_data):
        table, errors = pocket_data
        with ExploreSession(table, errors) as session:
            first = session.explore(min_support=0.05, n_jobs=4)
            # The second parallel point reuses the persistent pool.
            second = session.explore(min_support=0.03, n_jobs=4)
        assert exact_rows(first) == exact_rows(
            cold(table, errors, min_support=0.05, n_jobs=4)
        )
        assert exact_rows(second) == exact_rows(
            cold(table, errors, min_support=0.03, n_jobs=4)
        )

    def test_numeric_outcome_fpgrowth_remines_exactly(self, pocket_data, rng):
        # FP-growth on a numeric outcome is the one non-derivable cell:
        # it must re-mine, and still match cold bit-for-bit.
        table, _errors = pocket_data
        numeric = rng.normal(size=table.n_rows)
        with ExploreSession(table, numeric) as session:
            session.explore(min_support=0.05)
            warm = session.explore(min_support=0.12)
        assert exact_rows(warm) == exact_rows(
            cold(table, numeric, min_support=0.12)
        )


class TestInvalidation:
    def explore_deltas(self, session, obs, **kwargs):
        before = dict(obs.counters)
        session.explore(**kwargs)
        return session_deltas(obs, before)

    def test_cold_session_builds_everything(self, obs_session):
        session, obs, _table, _errors = obs_session
        deltas = self.explore_deltas(session, obs, min_support=0.05)
        assert deltas == {
            "session.trees.misses": 2,       # x and y
            "session.universe.misses": 1,
            "session.mined.misses": 1,
        }

    def test_identical_config_hits_everything(self, obs_session):
        session, obs, _table, _errors = obs_session
        session.explore(min_support=0.05)
        deltas = self.explore_deltas(session, obs, min_support=0.05)
        assert deltas == {
            "session.universe.hits": 1,
            "session.mined.hits": 1,
        }

    def test_support_increase_derives_from_cache(self, obs_session):
        session, obs, _table, _errors = obs_session
        session.explore(min_support=0.05)
        deltas = self.explore_deltas(session, obs, min_support=0.2)
        assert deltas == {
            "session.universe.hits": 1,
            "session.mined.hits": 1,
        }

    def test_support_decrease_remines(self, obs_session):
        session, obs, _table, _errors = obs_session
        session.explore(min_support=0.1)
        deltas = self.explore_deltas(session, obs, min_support=0.05)
        assert deltas == {
            "session.universe.hits": 1,
            "session.mined.misses": 1,
        }
        # ... and the lower mine replaces the cached one: the original
        # support is now served by derivation.
        deltas = self.explore_deltas(session, obs, min_support=0.1)
        assert deltas == {
            "session.universe.hits": 1,
            "session.mined.hits": 1,
        }

    def test_tree_support_change_rediscretizes(self, obs_session):
        session, obs, _table, _errors = obs_session
        session.explore(min_support=0.05)
        deltas = self.explore_deltas(session, obs, min_support=0.05, tree_support=0.2)
        assert deltas == {
            "session.trees.misses": 2,
            "session.universe.misses": 1,
            "session.mined.misses": 1,
        }

    def test_criterion_change_rediscretizes(self, obs_session):
        session, obs, _table, _errors = obs_session
        session.explore(min_support=0.05)
        deltas = self.explore_deltas(session, obs, min_support=0.05, criterion="entropy")
        assert deltas == {
            "session.trees.misses": 2,
            "session.universe.misses": 1,
            "session.mined.misses": 1,
        }

    def test_backend_change_remines_only(self, obs_session):
        session, obs, _table, _errors = obs_session
        session.explore(min_support=0.05)
        deltas = self.explore_deltas(session, obs, min_support=0.05, backend="bitset")
        assert deltas == {
            "session.universe.hits": 1,
            "session.engine.misses": 1,
            "session.mined.misses": 1,
        }
        # The engine is an artifact too: a second bitset explore hits it
        # through the mined cache without rebuilding anything.
        deltas = self.explore_deltas(session, obs, min_support=0.05, backend="bitset")
        assert deltas == {
            "session.universe.hits": 1,
            "session.mined.hits": 1,
        }

    def test_max_length_change_remines_only(self, obs_session):
        session, obs, _table, _errors = obs_session
        session.explore(min_support=0.05)
        deltas = self.explore_deltas(session, obs, min_support=0.05, max_length=2)
        assert deltas == {
            "session.universe.hits": 1,
            "session.mined.misses": 1,
        }

    def test_polarity_change_remines_only(self, obs_session):
        session, obs, _table, _errors = obs_session
        session.explore(min_support=0.05)
        deltas = self.explore_deltas(session, obs, min_support=0.05, polarity=True)
        assert deltas == {
            "session.universe.hits": 1,
            "session.mined.misses": 1,
        }

    def test_numeric_fpgrowth_support_increase_remines(self, pocket_data, rng):
        table, _errors = pocket_data
        numeric = rng.normal(size=table.n_rows)
        obs = ObsCollector()
        with ExploreSession(table, numeric, obs=obs) as session:
            session.explore(min_support=0.05)
            deltas = self.explore_deltas(session, obs, min_support=0.2)
        assert deltas == {
            "session.universe.hits": 1,
            "session.mined.misses": 1,
        }

    def test_changed_data_means_a_fresh_session(self, pocket_data, obs_session):
        # Sessions bind their (table, outcome) at construction: mutated
        # data gets a fresh session, which rebuilds every artifact.
        warm_session, _obs, table, errors = obs_session
        warm_session.explore(min_support=0.05)
        flipped = 1.0 - errors
        obs2 = ObsCollector()
        with ExploreSession(table, flipped, obs=obs2) as fresh:
            before = dict(obs2.counters)
            fresh.explore(min_support=0.05)
        deltas = session_deltas(obs2, before)
        assert deltas["session.mined.misses"] == 1
        assert deltas["session.universe.misses"] == 1
        assert "session.mined.hits" not in deltas


class TestSweep:
    def test_sweep_points_match_cold(self, obs_session):
        session, _obs, table, errors = obs_session
        supports = [0.05, 0.1, 0.15, 0.2]
        sweep = session.sweep("min_support", supports)
        assert len(sweep) == 4
        assert [p.value for p in sweep] == supports
        for point in sweep:
            reference = cold(table, errors, min_support=point.value)
            assert exact_rows(point.result) == exact_rows(reference), point.value

    def test_sweep_cache_traffic(self, obs_session):
        session, _obs, _table, _errors = obs_session
        sweep = session.sweep("min_support", [0.05, 0.1, 0.2])
        first, *rest = sweep.points
        assert first.cache_misses > 0
        for point in rest:
            assert point.cache_misses == 0, point.value
            assert point.cache_hits > 0, point.value

    def test_parallel_sweep_matches_cold(self, pocket_data):
        table, errors = pocket_data
        with ExploreSession(table, errors) as session:
            sweep = session.sweep("min_support", [0.05, 0.1], n_jobs=4)
            for point in sweep:
                reference = cold(
                    table, errors, min_support=point.value, n_jobs=4
                )
                assert exact_rows(point.result) == exact_rows(reference)

    def test_sweep_other_params(self, obs_session):
        session, _obs, table, errors = obs_session
        sweep = session.sweep("backend", ["fpgrowth", "bitset"], min_support=0.1)
        rows = [exact_rows(p.result) for p in sweep]
        # Canonical ordering makes the backends agree bit-for-bit.
        assert rows[0] == rows[1]

    def test_sweep_emits_span_tree(self, pocket_data):
        table, errors = pocket_data
        obs = ObsCollector()
        with ExploreSession(table, errors, obs=obs) as session:
            session.sweep("min_support", [0.05, 0.1])
        roots = [s for s in obs.roots if s.name == "sweep"]
        assert len(roots) == 1
        points = [c for c in roots[0].children if c.name == "point"]
        assert len(points) == 2
        for span in points:
            assert "cache_hits" in span.attrs
            assert "cache_misses" in span.attrs

    def test_sweep_validates_param_and_values(self, obs_session):
        session, _obs, _table, _errors = obs_session
        with pytest.raises(ValueError, match="unknown sweep parameter"):
            session.sweep("supportz", [0.1])
        with pytest.raises(ValueError, match="at least one value"):
            session.sweep("min_support", [])

    def test_results_accessor(self, obs_session):
        session, _obs, _table, _errors = obs_session
        sweep = session.sweep("min_support", [0.1, 0.2])
        assert [len(r) for r in sweep.results()] == [len(p.result) for p in sweep]


class TestSessionLifecycle:
    def test_close_is_idempotent(self, pocket_data):
        table, errors = pocket_data
        session = ExploreSession(table, errors)
        session.explore(min_support=0.1, n_jobs=2)
        session.close()
        session.close()

    def test_explore_rejects_unknown_kwargs(self, obs_session):
        session, _obs, _table, _errors = obs_session
        with pytest.raises(TypeError, match="unexpected keyword"):
            session.explore(min_support=0.1, shrubbery=3)

    def test_repr_counts_artifacts(self, obs_session):
        session, _obs, _table, _errors = obs_session
        session.explore(min_support=0.1)
        text = repr(session)
        assert "trees=2" in text and "universes=1" in text and "mined=1" in text


class TestCoerceOutcome:
    def test_outcome_passthrough(self, pocket_outcome):
        _table, outcome = pocket_outcome
        assert coerce_outcome(outcome) is outcome

    def test_column_name(self, small_table):
        outcome = coerce_outcome("age")
        assert isinstance(outcome, Outcome)
        np.testing.assert_array_equal(
            outcome.values(small_table), numeric_outcome("age").values(small_table)
        )

    def test_column_pair_is_error_rate(self):
        table = Table({"label": [0.0, 1.0, 1.0], "pred": [0.0, 0.0, 1.0]})
        outcome = coerce_outcome(("label", "pred"))
        reference = error_rate("label", "pred")
        np.testing.assert_array_equal(
            outcome.values(table), reference.values(table)
        )
        assert outcome.boolean

    def test_ndarray_infers_boolean(self):
        assert coerce_outcome(np.array([0.0, 1.0, 1.0])).boolean
        assert not coerce_outcome(np.array([0.0, 0.5, 1.0])).boolean

    def test_array_pair_is_misclassification(self):
        t = np.array([1.0, 0.0, 1.0])
        p = np.array([1.0, 1.0, 0.0])
        outcome = coerce_outcome((t, p))
        table = Table({"x": [1.0, 2.0, 3.0]})
        np.testing.assert_array_equal(outcome.values(table), [0.0, 1.0, 1.0])
        assert outcome.boolean

    def test_array_pair_shape_mismatch(self):
        with pytest.raises(ValueError, match="disagree in shape"):
            coerce_outcome((np.zeros(3), np.zeros(4)))

    def test_plain_sequence_deprecated(self):
        with pytest.warns(DeprecationWarning, match="plain Python sequence"):
            outcome = coerce_outcome([0.0, 1.0, 0.0])
        assert outcome.boolean

    def test_garbage_raises(self):
        with pytest.raises(TypeError, match="cannot interpret"):
            coerce_outcome(object())

    def test_explorers_accept_array_pair(self, pocket_data):
        # The front door is shared: the same spelling works everywhere.
        table, errors = pocket_data
        zeros = np.zeros_like(errors)
        via_pair = cold(table, (errors, zeros), min_support=0.1)
        via_array = cold(table, errors, min_support=0.1)
        assert exact_rows(via_pair) == exact_rows(via_array)
