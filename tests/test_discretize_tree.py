"""Unit tests for the tree discretizer."""

import math

import numpy as np
import pytest

from repro.core.discretize import TreeDiscretizer
from repro.core.outcomes import array_outcome, numeric_outcome
from repro.tabular import Table


@pytest.fixture
def step_data(rng):
    """x uniform in [0, 10); outcome is 1 exactly when x > 7."""
    n = 2000
    x = rng.uniform(0, 10, n)
    o = (x > 7).astype(float)
    return Table({"x": x}), o


class TestFit:
    def test_finds_the_step(self, step_data):
        table, o = step_data
        tree = TreeDiscretizer(0.1, criterion="divergence").fit(table, "x", o)
        assert tree.root.split_value == pytest.approx(7.0, abs=0.1)

    def test_entropy_also_finds_the_step(self, step_data):
        table, o = step_data
        tree = TreeDiscretizer(0.1, criterion="entropy").fit(table, "x", o)
        assert tree.root.split_value == pytest.approx(7.0, abs=0.1)

    def test_support_constraint_holds_everywhere(self, step_data):
        table, o = step_data
        st = 0.15
        tree = TreeDiscretizer(st).fit(table, "x", o)
        for node in tree.nodes():
            assert node.stats.count >= math.ceil(st * table.n_rows)

    def test_leaves_partition_rows(self, step_data):
        table, o = step_data
        tree = TreeDiscretizer(0.1).fit(table, "x", o)
        total = np.zeros(table.n_rows, dtype=int)
        for item in tree.leaf_items():
            total += item.mask(table).astype(int)
        assert (total == 1).all()

    def test_children_partition_parent(self, step_data):
        table, o = step_data
        tree = TreeDiscretizer(0.1).fit(table, "x", o)
        for node in tree.nodes():
            if node.children:
                left, right = node.children
                assert (
                    left.stats.count + right.stats.count == node.stats.count
                )

    def test_max_depth(self, step_data):
        table, o = step_data
        tree = TreeDiscretizer(0.01, max_depth=2).fit(table, "x", o)
        assert tree.depth() <= 2

    def test_min_gain_stops_splitting(self, rng):
        # Constant outcome: divergence gain is always zero.
        table = Table({"x": rng.uniform(0, 1, 500)})
        o = np.ones(500)
        tree = TreeDiscretizer(0.1, min_gain=1e-9).fit(table, "x", o)
        assert tree.root.is_leaf

    def test_zero_gain_still_splits_by_default(self, rng):
        # Paper behaviour: support is the only stopping criterion.
        table = Table({"x": rng.uniform(0, 1, 500)})
        o = np.ones(500)
        tree = TreeDiscretizer(0.2).fit(table, "x", o)
        assert not tree.root.is_leaf

    def test_nan_attribute_rows_excluded(self, rng):
        x = rng.uniform(0, 10, 1000)
        x[:100] = np.nan
        o = (x > 5).astype(float)
        table = Table({"x": x})
        tree = TreeDiscretizer(0.1).fit(table, "x", o)
        assert tree.root.stats.count == 900

    def test_nan_outcomes_excluded_from_stats_not_support(self, rng):
        x = rng.uniform(0, 10, 1000)
        o = np.full(1000, np.nan)
        o[:500] = (x[:500] > 5).astype(float)
        table = Table({"x": x})
        tree = TreeDiscretizer(0.1).fit(table, "x", o)
        assert tree.root.stats.count == 1000
        assert tree.root.stats.n == 500

    def test_constant_attribute_single_leaf(self):
        table = Table({"x": [3.0] * 100})
        tree = TreeDiscretizer(0.1).fit(table, "x", np.ones(100))
        assert tree.root.is_leaf
        assert len(tree.leaf_items()) == 1

    def test_max_candidates_cap_still_splits(self, step_data):
        table, o = step_data
        tree = TreeDiscretizer(0.1, max_candidates=2).fit(table, "x", o)
        assert not tree.root.is_leaf

    def test_support_too_large_single_leaf(self, step_data):
        table, o = step_data
        tree = TreeDiscretizer(0.7).fit(table, "x", o)
        assert tree.root.is_leaf

    def test_entropy_rejects_numeric_outcome(self, step_data):
        table, _ = step_data
        table = table.with_values("income", list(range(table.n_rows)))
        disc = TreeDiscretizer(0.1, criterion="entropy")
        with pytest.raises(ValueError, match="entropy"):
            disc.fit(table, "x", numeric_outcome("income"))

    def test_divergence_accepts_numeric_outcome(self, rng):
        x = rng.uniform(0, 10, 500)
        income = np.where(x > 5, 100.0, 10.0) + rng.normal(0, 1, 500)
        table = Table({"x": x, "income": income})
        tree = TreeDiscretizer(0.1).fit(table, "x", numeric_outcome("income"))
        assert tree.root.split_value == pytest.approx(5.0, abs=0.3)

    def test_outcome_object_accepted(self, step_data):
        table, o = step_data
        outcome = array_outcome(o, boolean=True)
        tree = TreeDiscretizer(0.1).fit(table, "x", outcome)
        assert not tree.root.is_leaf

    def test_bad_support_rejected(self):
        with pytest.raises(ValueError):
            TreeDiscretizer(0.0)
        with pytest.raises(ValueError):
            TreeDiscretizer(1.5)

    def test_bad_candidates_rejected(self):
        with pytest.raises(ValueError):
            TreeDiscretizer(0.1, max_candidates=0)

    def test_outcome_length_checked(self, step_data):
        table, _ = step_data
        with pytest.raises(ValueError, match="length"):
            TreeDiscretizer(0.1).fit(table, "x", np.ones(3))


class TestHierarchyConversion:
    def test_to_hierarchy_validates(self, step_data):
        table, o = step_data
        tree = TreeDiscretizer(0.1).fit(table, "x", o)
        hierarchy = tree.to_hierarchy()
        hierarchy.validate(table)  # Definition 4.1 partition property

    def test_items_exclude_root_by_default(self, step_data):
        table, o = step_data
        tree = TreeDiscretizer(0.1).fit(table, "x", o)
        items = tree.items()
        assert tree.root.item not in items
        assert tree.root.item in tree.items(include_root=True)

    def test_leaf_items_subset_of_items(self, step_data):
        table, o = step_data
        tree = TreeDiscretizer(0.1).fit(table, "x", o)
        assert set(tree.leaf_items()) <= set(tree.items(include_root=True))

    def test_render_contains_support(self, step_data):
        table, o = step_data
        tree = TreeDiscretizer(0.2).fit(table, "x", o)
        assert "sup=1.00" in tree.render()


class TestFitAll:
    def test_fits_every_continuous_attribute(self, pocket_data):
        table, errors = pocket_data
        trees = TreeDiscretizer(0.1).fit_all(table, errors)
        assert set(trees) == {"x", "y"}

    def test_attribute_subset(self, pocket_data):
        table, errors = pocket_data
        trees = TreeDiscretizer(0.1).fit_all(table, errors, attributes=["x"])
        assert set(trees) == {"x"}

    def test_hierarchy_set(self, pocket_data):
        table, errors = pocket_data
        gamma = TreeDiscretizer(0.1).hierarchy_set(table, errors)
        assert "x" in gamma and "y" in gamma
        gamma.validate(table)
