"""Tests for the exploration report."""

import pytest

from repro.core.hexplorer import HDivExplorer
from repro.core.report import exploration_report


@pytest.fixture(scope="module")
def explored_pocket():
    import numpy as np

    from repro.tabular import Table

    rng = np.random.default_rng(5)
    n = 3000
    x = rng.uniform(-5, 5, n)
    cat = rng.choice(["a", "b"], n)
    p = np.where((x > 0) & (x <= 2) & (cat == "b"), 0.5, 0.05)
    o = (rng.uniform(size=n) < p).astype(float)
    table = Table({"x": x, "cat": cat})
    explorer = HDivExplorer(0.05, tree_support=0.1)
    result = explorer.explore(table, o)
    return result, explorer.last_hierarchies_


def test_report_sections(explored_pocket):
    result, hierarchies = explored_pocket
    text = exploration_report(result, hierarchies=hierarchies)
    assert "dataset statistic" in text
    assert "top positive-divergence subgroups" in text
    assert "top negative-divergence subgroups" in text
    assert "globally most influential items" in text
    assert "item hierarchies:" in text
    assert "x=*" in text  # rendered hierarchy root


def test_report_respects_k(explored_pocket):
    result, _ = explored_pocket
    one = exploration_report(result, k=1)
    five = exploration_report(result, k=5)
    assert len(five.splitlines()) > len(one.splitlines())


def test_report_scale(explored_pocket):
    result, _ = explored_pocket
    text = exploration_report(result, scale=1000.0)
    assert "scale: 1/1000" in text


def test_report_redundancy_pruning_shrinks(explored_pocket):
    result, _ = explored_pocket
    pruned = exploration_report(result, redundancy_epsilon=0.5)
    assert "top positive-divergence subgroups" in pruned


def test_report_validates_k(explored_pocket):
    result, _ = explored_pocket
    with pytest.raises(ValueError):
        exploration_report(result, k=0)


def test_cli_report(tmp_path, capsys):
    from repro.cli import main
    from repro.datasets import german
    from repro.tabular import write_csv

    path = tmp_path / "german.csv"
    write_csv(german(n_rows=400).table, path)
    code = main(
        [
            "report", str(path), "--kind", "error",
            "--y-true", "label", "--y-pred", "pred",
            "--support", "0.2", "--top", "2",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Divergence report" in out
    assert "significant at FDR" in out
