"""Unit tests for the mining backends (Apriori, FP-Growth).

Both are checked against a brute-force reference on small universes,
against each other on larger ones, and their accumulated statistics
against direct mask computation.
"""

from itertools import combinations

import numpy as np
import pytest

from repro.core.divergence import OutcomeStats
from repro.core.items import CategoricalItem, IntervalItem
from repro.core.mining import (
    EncodedUniverse,
    base_universe,
    generalized_universe,
    mine,
    mine_apriori,
    mine_fpgrowth,
)
from repro.core.discretize import TreeDiscretizer
from repro.core.hierarchy import HierarchySet
from repro.core.outcomes import array_outcome
from repro.tabular import Table


def brute_force(universe, min_support, max_length=None):
    """Reference: enumerate all attribute-distinct itemsets directly."""
    n = universe.n_rows
    min_count = max(1, int(np.ceil(min_support * n)))
    out = {}
    ids = range(universe.n_items())
    top = max_length or universe.n_items()
    for k in range(1, top + 1):
        for combo in combinations(ids, k):
            attrs = [universe.attribute_of[i] for i in combo]
            if len(set(attrs)) != len(attrs):
                continue
            mask = np.ones(n, dtype=bool)
            for i in combo:
                mask &= universe.masks[i]
            if mask.sum() >= min_count:
                out[frozenset(combo)] = universe.stats_of_mask(mask)
    return out


def as_dict(mined):
    return {m.ids: m.stats for m in mined}


def stats_equal(a: OutcomeStats, b: OutcomeStats) -> bool:
    return (
        a.count == b.count
        and a.n == b.n
        and a.total == pytest.approx(b.total)
        and a.total_sq == pytest.approx(b.total_sq)
    )


@pytest.fixture
def flat_universe(rng):
    """A small flat universe: 2 discretized attrs + 1 categorical."""
    n = 400
    x = rng.uniform(0, 10, n)
    cat = rng.choice(["a", "b", "c"], n)
    o = (x > 6).astype(float)
    o[rng.uniform(size=n) < 0.1] = np.nan
    table = Table({"x": x, "cat": cat})
    items = [
        IntervalItem("x", high=3),
        IntervalItem("x", 3, 6),
        IntervalItem("x", low=6),
        CategoricalItem("cat", "a"),
        CategoricalItem("cat", "b"),
        CategoricalItem("cat", "c"),
    ]
    return EncodedUniverse.from_table(table, items, o)


@pytest.fixture
def generalized_fixture(rng):
    """A generalized universe built from real discretization trees."""
    n = 600
    x = rng.uniform(-5, 5, n)
    y = rng.uniform(-5, 5, n)
    cat = rng.choice(["u", "v"], n)
    o = ((x > 0) & (y > 0)).astype(float)
    table = Table({"x": x, "y": y, "cat": cat})
    gamma = TreeDiscretizer(0.2).hierarchy_set(table, o)
    return generalized_universe(table, o, gamma)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("support", [0.05, 0.2, 0.5])
    def test_apriori_flat(self, flat_universe, support):
        expected = brute_force(flat_universe, support)
        got = as_dict(mine_apriori(flat_universe, support))
        assert set(got) == set(expected)
        for ids in got:
            assert stats_equal(got[ids], expected[ids])

    @pytest.mark.parametrize("support", [0.05, 0.2, 0.5])
    def test_fpgrowth_flat(self, flat_universe, support):
        expected = brute_force(flat_universe, support)
        got = as_dict(mine_fpgrowth(flat_universe, support))
        assert set(got) == set(expected)
        for ids in got:
            assert stats_equal(got[ids], expected[ids])

    @pytest.mark.parametrize("support", [0.1, 0.3])
    def test_both_generalized(self, generalized_fixture, support):
        expected = brute_force(generalized_fixture, support, max_length=3)
        ap = as_dict(mine_apriori(generalized_fixture, support, 3))
        fp = as_dict(mine_fpgrowth(generalized_fixture, support, 3))
        assert set(ap) == set(expected)
        assert set(fp) == set(expected)
        for ids in expected:
            assert stats_equal(ap[ids], expected[ids])
            assert stats_equal(fp[ids], expected[ids])


class TestBackendAgreement:
    def test_identical_results(self, generalized_fixture):
        ap = as_dict(mine_apriori(generalized_fixture, 0.1))
        fp = as_dict(mine_fpgrowth(generalized_fixture, 0.1))
        assert set(ap) == set(fp)
        for ids in ap:
            assert stats_equal(ap[ids], fp[ids])

    def test_mine_dispatch(self, flat_universe):
        assert set(as_dict(mine(flat_universe, 0.1, "apriori"))) == set(
            as_dict(mine(flat_universe, 0.1, "fpgrowth"))
        )

    def test_unknown_backend(self, flat_universe):
        with pytest.raises(ValueError, match="backend"):
            mine(flat_universe, 0.1, "magic")


class TestInvariants:
    def test_supports_at_least_threshold(self, flat_universe):
        s = 0.15
        for m in mine_fpgrowth(flat_universe, s):
            assert m.stats.count >= np.ceil(s * flat_universe.n_rows)

    def test_no_same_attribute_pairs(self, generalized_fixture):
        for m in mine_fpgrowth(generalized_fixture, 0.1):
            attrs = [generalized_fixture.attribute_of[i] for i in m.ids]
            assert len(set(attrs)) == len(attrs)

    def test_monotone_in_support(self, flat_universe):
        loose = {m.ids for m in mine_fpgrowth(flat_universe, 0.05)}
        tight = {m.ids for m in mine_fpgrowth(flat_universe, 0.3)}
        assert tight <= loose

    def test_max_length_respected(self, flat_universe):
        for m in mine_fpgrowth(flat_universe, 0.05, max_length=1):
            assert len(m.ids) == 1

    def test_subset_supports_dominate(self, flat_universe):
        mined = {m.ids: m.stats.count for m in mine_fpgrowth(flat_universe, 0.05)}
        for ids, count in mined.items():
            if len(ids) > 1:
                for sub in combinations(sorted(ids), len(ids) - 1):
                    assert mined[frozenset(sub)] >= count

    def test_invalid_support(self, flat_universe):
        with pytest.raises(ValueError):
            mine_fpgrowth(flat_universe, 0.0)
        with pytest.raises(ValueError):
            mine_apriori(flat_universe, 1.5)

    def test_empty_universe(self):
        table = Table({"x": [1.0, 2.0]})
        universe = EncodedUniverse.from_table(table, [], np.ones(2))
        assert mine_fpgrowth(universe, 0.5) == []
        assert mine_apriori(universe, 0.5) == []

    def test_nothing_frequent(self, flat_universe):
        assert mine_fpgrowth(flat_universe, 0.999) == []


class TestEncodedUniverse:
    def test_global_stats(self, flat_universe):
        g = flat_universe.global_stats()
        direct = OutcomeStats.from_outcomes(flat_universe.outcomes)
        assert stats_equal(g, direct)

    def test_stats_of_mask(self, flat_universe, rng):
        mask = rng.uniform(size=flat_universe.n_rows) < 0.4
        got = flat_universe.stats_of_mask(mask)
        direct = OutcomeStats.from_outcomes(flat_universe.outcomes, mask)
        assert stats_equal(got, direct)

    def test_transactions_match_masks(self, flat_universe):
        transactions = flat_universe.transactions()
        for row, items in enumerate(transactions):
            for i in range(flat_universe.n_items()):
                assert (i in items) == bool(flat_universe.masks[i, row])

    def test_restricted_preserves_masks(self, flat_universe):
        sub = flat_universe.restricted([0, 2, 4])
        assert sub.n_items() == 3
        np.testing.assert_array_equal(sub.masks[1], flat_universe.masks[2])

    def test_item_stats_match_masks(self, flat_universe):
        stats = flat_universe.item_stats()
        for i, s in enumerate(stats):
            direct = flat_universe.stats_of_mask(flat_universe.masks[i])
            assert stats_equal(s, direct)

    def test_shape_validation(self):
        table = Table({"x": [1.0, 2.0]})
        with pytest.raises(ValueError, match="outcome length"):
            EncodedUniverse(
                [IntervalItem("x")],
                np.ones((1, 2), dtype=bool),
                np.ones(3),
            )


class TestUniverseBuilders:
    def test_base_universe_items(self, pocket_data):
        table, errors = pocket_data
        leaves = TreeDiscretizer(0.25).fit_all(table, errors)
        universe = base_universe(
            table, errors, {a: t.leaf_items() for a, t in leaves.items()}
        )
        attrs = set(universe.attribute_of)
        assert attrs == {"x", "y", "cat"}

    def test_base_universe_categorical_selection(self, pocket_data):
        table, errors = pocket_data
        universe = base_universe(table, errors, {}, categorical_attributes=[])
        assert universe.n_items() == 0

    def test_generalized_universe_excludes_roots(self, pocket_data):
        table, errors = pocket_data
        gamma = TreeDiscretizer(0.25).hierarchy_set(table, errors)
        universe = generalized_universe(table, errors, gamma)
        for item in universe.items:
            if isinstance(item, IntervalItem):
                assert not item.is_universe

    def test_generalized_universe_adds_flat_categoricals(self, pocket_data):
        table, errors = pocket_data
        gamma = TreeDiscretizer(0.25).hierarchy_set(table, errors)
        universe = generalized_universe(table, errors, gamma)
        cat_items = [
            it for it in universe.items if it.attribute == "cat"
        ]
        assert len(cat_items) == 3

    def test_generalized_skips_hierarchy_covered_categoricals(self):
        table = Table({"c": ["a", "b", "a", "b"]})
        gamma = HierarchySet()
        gamma.add_flat(
            "c", [CategoricalItem("c", "a"), CategoricalItem("c", "b")]
        )
        universe = generalized_universe(table, np.ones(4), gamma)
        # Items come from the hierarchy, not duplicated as flat ones.
        assert universe.n_items() == 2


class TestBitsetVsPurePython:
    """Property-style: the packed-bitset engine must reproduce the
    pure-Python backends exactly, across random tables mixing
    categorical and continuous attributes with missing outcomes."""

    @staticmethod
    def _random_universe(seed):
        gen = np.random.default_rng(seed)
        n = int(gen.integers(80, 700))
        x = gen.normal(size=n)
        y = gen.uniform(-2, 5, size=n)
        cat = gen.choice(["p", "q", "r"], n)
        table = Table({"x": x, "y": y, "cat": cat})
        if gen.random() < 0.5:
            o = gen.integers(0, 2, size=n).astype(float)  # boolean outcome
        else:
            o = gen.normal(size=n)  # numeric outcome
        o[gen.uniform(size=n) < 0.15] = np.nan  # missing values
        items = [
            IntervalItem("x", high=float(np.median(x))),
            IntervalItem("x", low=float(np.median(x))),
            IntervalItem("y", high=float(np.quantile(y, 0.33))),
            IntervalItem("y", float(np.quantile(y, 0.33)),
                         float(np.quantile(y, 0.66))),
            IntervalItem("y", low=float(np.quantile(y, 0.66))),
            CategoricalItem("cat", "p"),
            CategoricalItem("cat", "q"),
            CategoricalItem("cat", "r"),
        ]
        return EncodedUniverse.from_table(table, items, o)

    @pytest.mark.parametrize("seed", range(8))
    def test_bitset_equals_pure_python(self, seed):
        universe = self._random_universe(seed)
        support = [0.02, 0.05, 0.1, 0.25][seed % 4]
        pure = as_dict(mine(universe, support, "eclat"))
        packed = as_dict(mine(universe, support, "bitset"))
        assert set(packed) == set(pure)
        for ids in pure:
            # Bit-identical, not approximately equal.
            assert packed[ids] == pure[ids]

    @pytest.mark.parametrize("seed", [0, 3, 5])
    def test_n_jobs_2_order_stable(self, seed):
        universe = self._random_universe(seed)
        serial = mine(universe, 0.05, "bitset", n_jobs=1)
        par = mine(universe, 0.05, "bitset", n_jobs=2)
        # Same itemsets, same statistics, same emission order.
        assert [(m.ids, m.stats) for m in par] == [
            (m.ids, m.stats) for m in serial
        ]

    def test_all_backends_agree_via_engine(self, generalized_fixture):
        from repro.core.mining.bitset import BitsetEngine

        engine = BitsetEngine(generalized_fixture)
        ref = as_dict(mine(generalized_fixture, 0.1, "fpgrowth"))
        for backend in ("apriori", "eclat", "bitset"):
            got = as_dict(
                mine(generalized_fixture, 0.1, backend, engine=engine)
            )
            assert set(got) == set(ref)
            for ids in ref:
                assert stats_equal(got[ids], ref[ids])
