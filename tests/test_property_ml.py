"""Property-based tests for the ML substrate."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.ml import DecisionTreeClassifier, RandomForestClassifier


@st.composite
def classification_problem(draw):
    n = draw(st.integers(20, 150))
    d = draw(st.integers(1, 4))
    n_classes = draw(st.integers(2, 3))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    y = rng.integers(0, n_classes, size=n)
    return X, y


@settings(max_examples=30, deadline=None)
@given(problem=classification_problem())
def test_tree_proba_rows_sum_to_one(problem):
    X, y = problem
    tree = DecisionTreeClassifier(max_depth=5).fit(X, y)
    proba = tree.predict_proba(X)
    np.testing.assert_allclose(proba.sum(axis=1), 1.0, rtol=1e-9)
    assert (proba >= 0).all()


@settings(max_examples=30, deadline=None)
@given(problem=classification_problem())
def test_tree_predictions_within_observed_classes(problem):
    X, y = problem
    tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
    pred = tree.predict(X)
    assert set(pred) <= set(range(int(y.max()) + 1))


@settings(max_examples=20, deadline=None)
@given(problem=classification_problem())
def test_unbounded_tree_memorizes_separable_data(problem):
    X, y = problem
    # Make labels a deterministic function of the (almost surely
    # distinct) first feature, so perfect training fit is achievable.
    y = (X[:, 0] > np.median(X[:, 0])).astype(int)
    tree = DecisionTreeClassifier().fit(X, y)
    assert (tree.predict(X) == y).mean() == 1.0


@settings(max_examples=15, deadline=None)
@given(problem=classification_problem(), seed=st.integers(0, 100))
def test_forest_deterministic_given_seed(problem, seed):
    X, y = problem
    a = RandomForestClassifier(n_estimators=3, max_depth=3, seed=seed)
    b = RandomForestClassifier(n_estimators=3, max_depth=3, seed=seed)
    np.testing.assert_array_equal(
        a.fit(X, y).predict(X), b.fit(X, y).predict(X)
    )


@settings(max_examples=20, deadline=None)
@given(problem=classification_problem())
def test_forest_proba_valid_distribution(problem):
    X, y = problem
    forest = RandomForestClassifier(n_estimators=4, max_depth=4, seed=0)
    proba = forest.fit(X, y).predict_proba(X)
    np.testing.assert_allclose(proba.sum(axis=1), 1.0, rtol=1e-9)
    assert (proba >= 0).all()
