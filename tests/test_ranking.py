"""Tests for ranking outcome functions."""

import numpy as np
import pytest

from repro.core.ranking import exposure, rank_position, selection_rate
from repro.tabular import Table


@pytest.fixture
def scored_table():
    return Table({"score": [10.0, 50.0, 30.0, None, 20.0, 40.0]})


class TestSelectionRate:
    def test_top_selected(self, scored_table):
        # 5 scored rows, top 40% -> 2 selected: scores 50 and 40.
        out = selection_rate("score", 0.4).values(scored_table)
        assert out[1] == 1.0 and out[5] == 1.0
        assert out[0] == 0.0 and out[2] == 0.0 and out[4] == 0.0
        assert np.isnan(out[3])

    def test_lower_is_better(self, scored_table):
        out = selection_rate("score", 0.4, higher_is_better=False).values(
            scored_table
        )
        assert out[0] == 1.0 and out[4] == 1.0

    def test_selection_count_exact(self, rng):
        table = Table({"score": rng.normal(size=1000)})
        out = selection_rate("score", 0.1).values(table)
        assert out.sum() == 100

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            selection_rate("score", 0.0)
        with pytest.raises(ValueError):
            selection_rate("score", 1.0)

    def test_all_missing(self):
        from repro.tabular import ColumnKind, Schema

        schema = Schema.from_kinds({"score": ColumnKind.CONTINUOUS})
        table = Table({"score": [None, None]}, schema=schema)
        out = selection_rate("score", 0.5).values(table)
        assert np.isnan(out).all()

    def test_divergence_detects_biased_ranking(self, rng):
        """A group pushed down the ranking has negative divergence."""
        n = 2000
        group = rng.choice(["a", "b"], n)
        score = rng.normal(0, 1, n) - 1.2 * (group == "b")
        table = Table({"group": group, "score": score})
        out = selection_rate("score", 0.2).values(table)
        b_rate = out[group == "b"].mean()
        assert b_rate < out.mean() - 0.05


class TestRankPosition:
    def test_extremes(self, scored_table):
        out = rank_position("score").values(scored_table)
        assert out[1] == 0.0       # best score 50
        assert out[0] == 1.0       # worst score 10
        assert np.isnan(out[3])

    def test_uniform_spacing(self):
        table = Table({"score": [4.0, 3.0, 2.0, 1.0, 0.0]})
        out = rank_position("score").values(table)
        np.testing.assert_allclose(out, [0.0, 0.25, 0.5, 0.75, 1.0])

    def test_single_row(self):
        table = Table({"score": [7.0]})
        assert rank_position("score").values(table)[0] == 0.0


class TestExposure:
    def test_top_row_full_exposure(self, scored_table):
        out = exposure("score").values(scored_table)
        assert out[1] == pytest.approx(1.0)

    def test_monotone_decreasing_in_rank(self):
        table = Table({"score": [5.0, 4.0, 3.0, 2.0, 1.0]})
        out = exposure("score").values(table)
        assert all(out[i] > out[i + 1] for i in range(4))

    def test_log_discount_values(self):
        table = Table({"score": [2.0, 1.0]})
        out = exposure("score").values(table)
        assert out[0] == pytest.approx(1.0)
        assert out[1] == pytest.approx(1.0 / np.log2(3.0))
