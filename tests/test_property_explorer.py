"""Differential property test: every exploration result re-derived
directly from masks must match exactly."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.divergence import OutcomeStats, welch_t
from repro.core.hexplorer import HDivExplorer
from repro.tabular import Table


@st.composite
def exploration_case(draw):
    n = draw(st.integers(40, 150))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    x = rng.uniform(-2, 2, n)
    if draw(st.booleans()):
        x[rng.uniform(size=n) < 0.1] = np.nan
    cat = rng.choice(["p", "q"], n)
    boolean = draw(st.booleans())
    if boolean:
        o = (rng.uniform(size=n) < 0.4).astype(float)
    else:
        o = rng.normal(0, 3, n)
    if draw(st.booleans()):
        o[rng.uniform(size=n) < 0.1] = np.nan
    support = draw(st.sampled_from([0.15, 0.3]))
    return Table({"x": x, "cat": cat}), o, support


@settings(max_examples=30, deadline=None)
@given(case=exploration_case())
def test_every_result_matches_direct_computation(case):
    table, outcomes, support = case
    explorer = HDivExplorer(support, tree_support=0.3)
    result = explorer.explore(table, outcomes)
    global_stats = OutcomeStats.from_outcomes(outcomes)
    for r in result:
        mask = r.itemset.mask(table)
        direct = OutcomeStats.from_outcomes(outcomes, mask)
        assert r.count == direct.count
        assert r.support == pytest.approx(direct.count / table.n_rows)
        if direct.n:
            assert r.mean == pytest.approx(direct.mean)
            assert r.divergence == pytest.approx(
                direct.mean - global_stats.mean
            )
        expected_t = welch_t(direct, global_stats)
        if not np.isnan(expected_t):
            assert r.t == pytest.approx(expected_t, rel=1e-9) or (
                np.isinf(expected_t) and np.isinf(r.t)
            )
        # Support threshold honoured.
        assert r.support >= support - 1e-12
