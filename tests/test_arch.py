"""Unit tests for reproarch (repro.devtools.arch).

Each check class is exercised on a seeded mini-repository under
``tmp_path`` carrying its own ``.reproarch.toml`` — one fixture that
must fire and one that must stay silent — plus the api-lock round-trip
and the reporters.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.devtools.arch import (
    LOCK_FILENAME,
    SPEC_FILENAME,
    ArchRunner,
    ArchSpec,
    build_project,
)
from repro.devtools.arch.graph import render_graph
from repro.devtools.arch.lockfile import check_lock, load_lock, write_lock
from repro.devtools.reporting import render_json, render_text

BASE_SPEC = """\
current_pr = 7

[layers]
repro = ["core"]
core = ["tabular"]
tabular = []
"""


def make_repo(tmp_path: Path, files: dict[str, str], spec: str = BASE_SPEC):
    (tmp_path / SPEC_FILENAME).write_text(spec, encoding="utf-8")
    base = {"src/repro/__init__.py": ""}
    for rel, source in {**base, **files}.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return tmp_path


def run_arch(root: Path, check_lock: bool = False):
    spec = ArchSpec.load(root / SPEC_FILENAME)
    return ArchRunner(root=root, spec=spec).run(check_lock=check_lock)


def codes(report) -> set[str]:
    return {f.code for f in report.findings}


class TestLayering:
    def test_allowed_import_is_clean(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/tabular/__init__.py": "X = 1\n",
            "src/repro/core/__init__.py": "from repro.tabular import X\nY = X\n",
        })
        assert codes(run_arch(root)) == set()

    def test_forbidden_import_fires(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/core/__init__.py": "Y = 2\n",
            "src/repro/tabular/__init__.py": "from repro.core import Y\nZ = Y\n",
        })
        assert "RPA001" in codes(run_arch(root))

    def test_lazy_import_still_counts_for_layering(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/core/__init__.py": "Y = 2\n",
            "src/repro/tabular/__init__.py": (
                "def f():\n"
                "    from repro.core import Y\n"
                "    return Y\n"
            ),
        })
        assert "RPA001" in codes(run_arch(root))

    def test_undeclared_layer_fires(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/mystery/__init__.py": "A = 1\n",
        })
        assert "RPA001" in codes(run_arch(root))


class TestCycles:
    def test_toplevel_cycle_fires(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/core/__init__.py": "",
            "src/repro/core/a.py": "import repro.core.b\nA = 1\n",
            "src/repro/core/b.py": "import repro.core.a\nB = 1\n",
        })
        report = run_arch(root)
        assert "RPA002" in codes(report)
        [cycle] = [f for f in report.findings if f.code == "RPA002"]
        assert "repro.core.a" in cycle.message

    def test_lazy_import_breaks_the_cycle(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/core/__init__.py": "",
            "src/repro/core/a.py": "import repro.core.b\nA = 1\n",
            "src/repro/core/b.py": (
                "def f():\n"
                "    import repro.core.a\n"
                "    return repro.core.a.A\n"
            ),
        })
        assert "RPA002" not in codes(run_arch(root))


class TestExports:
    def test_dead_export_fires(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/core/__init__.py": (
                "def used():\n    return 1\n"
                "def unused():\n    return 2\n"
                '__all__ = ["used", "unused"]\n'
            ),
            "src/repro/__init__.py": "from repro.core import used\nX = used()\n",
        })
        report = run_arch(root)
        dead = [f for f in report.findings if f.code == "RPA003"]
        assert len(dead) == 1 and "unused" in dead[0].message

    def test_pure_reexport_is_not_a_use(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/core/__init__.py": (
                "def helper():\n    return 1\n"
                '__all__ = ["helper"]\n'
            ),
            "src/repro/__init__.py": (
                "from repro.core import helper\n"
                '__all__ = ["helper"]\n'
            ),
        })
        assert "RPA003" in codes(run_arch(root))

    def test_test_reference_keeps_export_alive(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/core/__init__.py": (
                "def helper():\n    return 1\n"
                '__all__ = ["helper"]\n'
            ),
            "tests/test_helper.py": (
                "from repro.core import helper\n"
                "def test_helper():\n    assert helper() == 1\n"
            ),
        })
        assert "RPA003" not in codes(run_arch(root))

    def test_exemption_silences_with_reason(self, tmp_path):
        spec = BASE_SPEC + textwrap.dedent("""
            [[exemptions.dead-export]]
            name = "repro.core:helper"
            reason = "kept for annotations"
        """)
        root = make_repo(tmp_path, {
            "src/repro/core/__init__.py": (
                "def helper():\n    return 1\n"
                '__all__ = ["helper"]\n'
            ),
        }, spec=spec)
        assert "RPA003" not in codes(run_arch(root))

    def test_stale_exemption_warns(self, tmp_path):
        spec = BASE_SPEC + textwrap.dedent("""
            [[exemptions.dead-export]]
            name = "repro.core:gone"
            reason = "no longer exists"
        """)
        root = make_repo(tmp_path, {"src/repro/core/__init__.py": ""}, spec=spec)
        assert "RPA012" in codes(run_arch(root))

    def test_unresolved_export_fires(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/core/__init__.py": '__all__ = ["missing"]\n',
        })
        assert "RPA004" in codes(run_arch(root))

    def test_lazy_export_hint_resolves(self, tmp_path):
        spec = BASE_SPEC + textwrap.dedent("""
            [lazy-exports]
            "repro.core" = "repro.core.impl"
        """)
        root = make_repo(tmp_path, {
            "src/repro/core/__init__.py": (
                '__all__ = ["lazy_thing"]\n'
                "def __getattr__(name):\n"
                "    from repro.core import impl\n"
                "    return getattr(impl, name)\n"
            ),
            "src/repro/core/impl.py": "def lazy_thing():\n    return 3\n",
            "tests/test_lazy.py": (
                "from repro.core import lazy_thing\n"
                "def test_it():\n    assert lazy_thing() == 3\n"
            ),
        }, spec=spec)
        assert "RPA004" not in codes(run_arch(root))

    def test_lazy_export_hint_list_tries_each_module(self, tmp_path):
        spec = BASE_SPEC + textwrap.dedent("""
            [lazy-exports]
            "repro.core" = ["repro.core.impl_a", "repro.core.impl_b"]
        """)
        root = make_repo(tmp_path, {
            "src/repro/core/__init__.py": (
                '__all__ = ["thing_a", "thing_b"]\n'
                "def __getattr__(name):\n"
                "    from repro.core import impl_a, impl_b\n"
                "    for mod in (impl_a, impl_b):\n"
                "        if hasattr(mod, name):\n"
                "            return getattr(mod, name)\n"
                "    raise AttributeError(name)\n"
            ),
            "src/repro/core/impl_a.py": "def thing_a():\n    return 1\n",
            "src/repro/core/impl_b.py": "def thing_b():\n    return 2\n",
            "tests/test_lazy.py": (
                "from repro.core import thing_a, thing_b\n"
                "def test_it():\n    assert thing_a() + thing_b() == 3\n"
            ),
        }, spec=spec)
        assert "RPA004" not in codes(run_arch(root))


class TestApiLock:
    FILES = {
        "src/repro/core/__init__.py": (
            "def explore(table, outcome, k=5):\n    return []\n"
            '__all__ = ["explore"]\n'
        ),
        "tests/test_core.py": (
            "from repro.core import explore\n"
            "def test_explore():\n    assert explore(1, 2) == []\n"
        ),
    }

    def run_with_lock(self, root: Path):
        spec = ArchSpec.load(root / SPEC_FILENAME)
        return ArchRunner(root=root, spec=spec).run(check_lock=True)

    def test_missing_lockfile_fires(self, tmp_path):
        root = make_repo(tmp_path, self.FILES)
        assert "RPA005" in codes(self.run_with_lock(root))

    def test_lock_then_check_is_clean(self, tmp_path):
        root = make_repo(tmp_path, self.FILES)
        spec = ArchSpec.load(root / SPEC_FILENAME)
        project = build_project(root, spec)
        write_lock(project, root / LOCK_FILENAME)
        assert load_lock(root / LOCK_FILENAME) is not None
        report = self.run_with_lock(root)
        assert report.ok and "RPA005" not in codes(report)

    def test_signature_change_without_update_fires(self, tmp_path):
        root = make_repo(tmp_path, self.FILES)
        spec = ArchSpec.load(root / SPEC_FILENAME)
        write_lock(build_project(root, spec), root / LOCK_FILENAME)
        (root / "src/repro/core/__init__.py").write_text(
            "def explore(table, outcome, k=5, depth=None):\n    return []\n"
            '__all__ = ["explore"]\n',
            encoding="utf-8",
        )
        report = self.run_with_lock(root)
        drift = [f for f in report.findings if f.code == "RPA005"]
        assert drift and "explore" in drift[0].message
        assert "--update-lock" in drift[0].message or "lock" in drift[0].message

    def test_new_export_without_update_fires(self, tmp_path):
        root = make_repo(tmp_path, self.FILES)
        spec = ArchSpec.load(root / SPEC_FILENAME)
        write_lock(build_project(root, spec), root / LOCK_FILENAME)
        (root / "src/repro/core/__init__.py").write_text(
            "def explore(table, outcome, k=5):\n    return []\n"
            "def extra():\n    return 1\n"
            '__all__ = ["explore", "extra"]\n',
            encoding="utf-8",
        )
        project = build_project(root, ArchSpec.load(root / SPEC_FILENAME))
        findings = check_lock(project, root / LOCK_FILENAME)
        assert any("extra" in f.message for f in findings)


class TestConfigContract:
    CONFIG = """\
    import dataclasses

    @dataclasses.dataclass
    class ExploreConfig:
        alpha: float = 0.1
        beta: int = 2
        obs: object = None

        def to_dict(self):
            return {
                f.name: getattr(self, f.name)
                for f in dataclasses.fields(self)
                if f.name not in ("obs",)
            }

        @classmethod
        def from_dict(cls, data):
            return cls(**data)

        def fingerprint(self):
            return "x"

    _FIELD_NAMES = frozenset(
        f.name for f in dataclasses.fields(ExploreConfig)
    )
    _SERIALIZED_FIELDS = frozenset(_FIELD_NAMES - {"obs"})
    """
    CLI = """\
    from repro.core.config import ExploreConfig

    def _explore_config(args):
        return ExploreConfig.from_dict(
            {"alpha": args.alpha, "beta": args.beta}
        )
    """
    SPEC = BASE_SPEC + textwrap.dedent("""
        [[exemptions.config-field]]
        name = "obs"
        reason = "runtime collector"
    """)

    def repo(self, tmp_path, config=None, cli=None, spec=None):
        return make_repo(tmp_path, {
            "src/repro/core/__init__.py": "",
            "src/repro/core/config.py": config or self.CONFIG,
            "src/repro/cli.py": cli or self.CLI,
        }, spec=spec or self.SPEC)

    def test_consistent_contract_is_clean(self, tmp_path):
        assert "RPA006" not in codes(run_arch(self.repo(tmp_path)))

    def test_missing_cli_key_fires(self, tmp_path):
        cli = self.CLI.replace(', "beta": args.beta', "")
        report = run_arch(self.repo(tmp_path, cli=cli))
        hits = [f for f in report.findings if f.code == "RPA006"]
        assert hits and "beta" in hits[0].message

    def test_exclusion_skew_fires(self, tmp_path):
        config = self.CONFIG.replace('("obs",)', '("obs", "beta")')
        report = run_arch(self.repo(tmp_path, config=config))
        assert any(
            f.code == "RPA006" and "disagree" in f.message
            for f in report.findings
        )

    def test_unexempted_exclusion_fires(self, tmp_path):
        report = run_arch(self.repo(tmp_path, spec=BASE_SPEC))
        assert any(
            f.code == "RPA006" and "'obs'" in f.message
            for f in report.findings
        )


class TestObsNames:
    SRC = {
        "src/repro/core/__init__.py": (
            "def run(obs):\n"
            '    obs.count("mining.real_counter")\n'
            '    with obs.span("explore"):\n'
            "        pass\n"
        ),
    }

    def test_asserted_and_emitted_is_clean(self, tmp_path):
        root = make_repo(tmp_path, {
            **self.SRC,
            "tests/test_obs_use.py": (
                "def test_counts(obs):\n"
                '    assert obs.counter("mining.real_counter") > 0\n'
            ),
        })
        assert "RPA007" not in codes(run_arch(root))

    def test_asserted_never_emitted_fires(self, tmp_path):
        root = make_repo(tmp_path, {
            **self.SRC,
            "tests/test_obs_use.py": (
                "def test_counts(obs):\n"
                '    assert obs.counter("mining.phantom") > 0\n'
            ),
        })
        report = run_arch(root)
        hits = [f for f in report.findings if f.code == "RPA007"]
        assert hits and "mining.phantom" in hits[0].message

    def test_absence_assertion_is_skipped(self, tmp_path):
        root = make_repo(tmp_path, {
            **self.SRC,
            "tests/test_obs_use.py": (
                "def test_counts(obs):\n"
                '    assert obs.counter("mining.phantom") == 0\n'
            ),
        })
        assert "RPA007" not in codes(run_arch(root))

    def test_locally_emitted_name_is_in_scope(self, tmp_path):
        root = make_repo(tmp_path, {
            **self.SRC,
            "tests/test_obs_use.py": (
                "def test_counts(obs):\n"
                '    obs.count("test.only_local")\n'
                '    assert obs.counter("test.only_local") == 1\n'
            ),
        })
        assert "RPA007" not in codes(run_arch(root))


class TestSchemaVersions:
    def test_declared_version_is_clean(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/core/__init__.py": 'SCHEMA = "repro.obs/foo@2"\n',
            "benchmark_results/out.json": '{"schema": "repro.obs/foo@2"}\n',
        })
        assert "RPA008" not in codes(run_arch(root))

    def test_undeclared_version_fires(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/core/__init__.py": 'SCHEMA = "repro.obs/foo@2"\n',
            "tests/test_foo.py": 'EXPECTED = "repro.obs/foo@3"\n',
        })
        report = run_arch(root)
        assert any(
            f.code == "RPA008" and "foo@3" in f.message
            for f in report.findings
        )

    def test_stale_json_fixture_fires_but_jsonl_history_passes(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/core/__init__.py": (
                'OLD = "repro.obs/foo@1"\nNEW = "repro.obs/foo@2"\n'
            ),
            "benchmark_results/snap.json": '{"schema": "repro.obs/foo@1"}\n',
            "benchmark_results/hist.jsonl": '{"schema": "repro.obs/foo@1"}\n',
        })
        report = run_arch(root)
        stale = [f for f in report.findings if f.code == "RPA008"]
        assert len(stale) == 1 and "snap.json" in stale[0].path


class TestDeprecations:
    SHIM = (
        "import warnings\n"
        "def old(x):\n"
        '    warnings.warn("old is deprecated", DeprecationWarning)\n'
        "    return x\n"
    )

    def test_unregistered_shim_fires(self, tmp_path):
        root = make_repo(tmp_path, {"src/repro/core/legacy.py": self.SHIM,
                                    "src/repro/core/__init__.py": ""})
        report = run_arch(root)
        hits = [f for f in report.findings if f.code == "RPA009"]
        assert hits and "repro.core.legacy:old" in hits[0].message

    def spec_with(self, remove_by_pr: int) -> str:
        return BASE_SPEC + textwrap.dedent(f"""
            [[deprecations]]
            site = "repro.core.legacy:old"
            reason = "legacy entry point"
            remove_by_pr = {remove_by_pr}
        """)

    def test_registered_future_horizon_is_clean(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/core/legacy.py": self.SHIM,
            "src/repro/core/__init__.py": "",
        }, spec=self.spec_with(12))
        report = run_arch(root)
        assert report.ok
        assert not codes(report) & {"RPA009", "RPA010"}

    def test_overdue_shim_fires(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/core/legacy.py": self.SHIM,
            "src/repro/core/__init__.py": "",
        }, spec=self.spec_with(5))
        report = run_arch(root)
        hits = [f for f in report.findings if f.code == "RPA010"]
        assert hits and "PR 5" in hits[0].message

    def test_registration_without_site_fires(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/core/__init__.py": "",
        }, spec=self.spec_with(12))
        report = run_arch(root)
        hits = [f for f in report.findings if f.code == "RPA010"]
        assert hits and "no such warn site" in hits[0].message


class TestSpecAndReporting:
    def test_missing_spec_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ArchSpec.load(tmp_path / SPEC_FILENAME)

    def test_unknown_spec_key_raises(self, tmp_path):
        (tmp_path / SPEC_FILENAME).write_text("typo_key = 1\n")
        with pytest.raises(ValueError, match="typo_key"):
            ArchSpec.load(tmp_path / SPEC_FILENAME)

    def test_unknown_exemption_category_raises(self):
        with pytest.raises(ValueError, match="category"):
            ArchSpec.from_dict(
                {"exemptions": {"nonsense": [{"name": "x", "reason": "y"}]}}
            )

    def test_reporters_render_arch_reports(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/core/__init__.py": "Y = 2\n",
            "src/repro/tabular/__init__.py": "from repro.core import Y\nZ = Y\n",
        })
        report = run_arch(root)
        text = render_text(report, tool="reproarch")
        assert text.startswith("src/repro/tabular")
        assert "reproarch:" in text
        payload = render_json(report)
        assert '"RPA001"' in payload and '"tool": "reproarch"' in payload

    def test_graph_renders_text_and_dot(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/tabular/__init__.py": "X = 1\n",
            "src/repro/core/__init__.py": "from repro.tabular import X\nY = X\n",
        })
        spec = ArchSpec.load(root / SPEC_FILENAME)
        project = build_project(root, spec)
        text = render_graph(project)
        assert "core" in text and "tabular" in text
        dot = render_graph(project, fmt="dot")
        assert dot.startswith("digraph") and '"core" -> "tabular"' in dot
