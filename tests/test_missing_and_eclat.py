"""Tests for MissingItem, missing-item universes, the Eclat backend,
and the error-difference outcome."""

import numpy as np
import pytest

from repro.core.explorer import DivExplorer
from repro.core.hexplorer import HDivExplorer
from repro.core.items import CategoricalItem, Itemset, MissingItem
from repro.core.mining import mine, mine_eclat, mine_fpgrowth
from repro.core.outcomes import error_difference
from repro.core.serialize import item_from_dict, item_to_dict
from repro.tabular import ColumnKind, Schema, Table


class TestMissingItem:
    def test_mask_matches_missing(self):
        table = Table({"x": [1.0, None, 3.0], "c": ["a", "b", None]})
        assert list(MissingItem("x").mask(table)) == [False, True, False]
        assert list(MissingItem("c").mask(table)) == [False, False, True]

    def test_equality_and_str(self):
        assert MissingItem("x") == MissingItem("x")
        assert MissingItem("x") != MissingItem("y")
        assert str(MissingItem("x")) == "x=⊥"

    def test_covers_only_self(self):
        assert MissingItem("x").covers(MissingItem("x"))
        assert not MissingItem("x").covers(CategoricalItem("x", "a"))

    def test_serialization_roundtrip(self):
        item = MissingItem("income")
        assert item_from_dict(item_to_dict(item)) == item

    def test_itemset_with_missing_item(self):
        table = Table({"x": [1.0, None, None], "c": ["a", "a", "b"]})
        itemset = Itemset([MissingItem("x"), CategoricalItem("c", "a")])
        assert list(itemset.mask(table)) == [False, True, False]


class TestMissingUniverse:
    @pytest.fixture
    def dirty_data(self, rng):
        """Rows with missing x err much more often."""
        n = 2000
        x = rng.uniform(0, 1, n)
        missing = rng.uniform(size=n) < 0.2
        x[missing] = np.nan
        c = rng.choice(["a", "b"], n)
        o = (rng.uniform(size=n) < np.where(missing, 0.5, 0.05)).astype(float)
        return Table({"x": x, "c": c}), o, missing

    def test_explorer_finds_missingness_subgroup(self, dirty_data):
        table, o, _ = dirty_data
        result = HDivExplorer(
            0.05, tree_support=0.2, include_missing_items=True
        ).explore(table, o)
        best = result.top_k(1)[0]
        assert MissingItem("x") in best.itemset
        assert best.divergence > 0.2

    def test_without_flag_missingness_invisible(self, dirty_data):
        table, o, _ = dirty_data
        result = HDivExplorer(0.05, tree_support=0.2).explore(table, o)
        for r in result:
            assert MissingItem("x") not in r.itemset

    def test_base_explorer_missing_flag(self, dirty_data):
        """⊥ items are added for *covered* attributes only."""
        from repro.core.discretize import TreeDiscretizer

        table, o, _ = dirty_data
        trees = TreeDiscretizer(0.2).fit_all(table, o)
        result = DivExplorer(
            0.05, include_missing_items=True
        ).explore(
            table, o,
            continuous_items={a: t.leaf_items() for a, t in trees.items()},
        )
        found = [r for r in result if MissingItem("x") in r.itemset]
        assert found

    def test_base_explorer_uncovered_attribute_gets_no_missing_item(
        self, dirty_data
    ):
        table, o, _ = dirty_data
        result = DivExplorer(
            0.05, include_missing_items=True
        ).explore(table, o)  # x not covered (no continuous items)
        assert all(MissingItem("x") not in r.itemset for r in result)


class TestEclat:
    def test_matches_fpgrowth_flat(self, pocket_data):
        from repro.core.discretize import TreeDiscretizer
        from repro.core.mining import base_universe

        table, errors = pocket_data
        trees = TreeDiscretizer(0.2).fit_all(table, errors)
        universe = base_universe(
            table, errors, {a: t.leaf_items() for a, t in trees.items()}
        )
        ec = {(m.ids, m.stats.count) for m in mine_eclat(universe, 0.1)}
        fp = {(m.ids, m.stats.count) for m in mine_fpgrowth(universe, 0.1)}
        assert ec == fp

    def test_matches_fpgrowth_generalized(self, pocket_data):
        from repro.core.discretize import TreeDiscretizer
        from repro.core.mining import generalized_universe

        table, errors = pocket_data
        gamma = TreeDiscretizer(0.2).hierarchy_set(table, errors)
        universe = generalized_universe(table, errors, gamma)
        ec = {(m.ids, m.stats.count) for m in mine_eclat(universe, 0.15)}
        fp = {(m.ids, m.stats.count) for m in mine_fpgrowth(universe, 0.15)}
        assert ec == fp

    def test_max_length(self, pocket_data):
        from repro.core.discretize import TreeDiscretizer
        from repro.core.mining import base_universe

        table, errors = pocket_data
        trees = TreeDiscretizer(0.25).fit_all(table, errors)
        universe = base_universe(
            table, errors, {a: t.leaf_items() for a, t in trees.items()}
        )
        mined = mine_eclat(universe, 0.1, max_length=2)
        assert max(len(m.ids) for m in mined) == 2

    def test_dispatch(self, pocket_data):
        from repro.core.mining import base_universe

        table, errors = pocket_data
        universe = base_universe(table, errors, {})
        assert {m.ids for m in mine(universe, 0.1, "eclat")} == {
            m.ids for m in mine(universe, 0.1, "apriori")
        }

    def test_explorer_backend(self, pocket_data):
        table, errors = pocket_data
        ec = HDivExplorer(0.1, tree_support=0.2, backend="eclat").explore(
            table, errors
        )
        fp = HDivExplorer(0.1, tree_support=0.2).explore(table, errors)
        assert ec.itemsets() == fp.itemsets()

    def test_invalid_support(self, pocket_data):
        from repro.core.mining import base_universe

        table, errors = pocket_data
        universe = base_universe(table, errors, {})
        with pytest.raises(ValueError):
            mine_eclat(universe, 0.0)


class TestErrorDifference:
    def test_values(self):
        table = Table(
            {
                "y": ["1", "1", "0", "0"],
                "a": ["0", "1", "0", "1"],  # errs on rows 0, 3
                "b": ["1", "0", "1", "1"],  # errs on rows 1, 2, 3
            }
        )
        out = error_difference("y", "a", "b").values(table)
        assert list(out) == [1.0, -1.0, -1.0, 0.0]

    def test_explorer_finds_regression_subgroup(self, rng):
        """Model A regresses only on cat=b rows."""
        n = 2000
        cat = rng.choice(["a", "b"], n)
        y = rng.choice(["0", "1"], n)
        pred_b = y.copy()  # model B is perfect
        pred_a = y.copy()
        regress = (cat == "b") & (rng.uniform(size=n) < 0.4)
        pred_a[regress] = np.where(y[regress] == "1", "0", "1")
        table = Table({"cat": cat, "y": y, "a": pred_a, "b": pred_b})
        out = error_difference("y", "a", "b").values(table)
        result = DivExplorer(0.1).explore(
            table.project(["cat"]), out
        )
        best = result.top_k(1, by="divergence")[0]
        assert best.itemset == Itemset([CategoricalItem("cat", "b")])
