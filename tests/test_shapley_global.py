"""Tests for global Shapley values and corrective items."""

import numpy as np
import pytest

from repro.core.explorer import DivExplorer
from repro.core.items import CategoricalItem, Itemset
from repro.core.shapley import corrective_items, global_shapley_values
from repro.tabular import Table


@pytest.fixture
def explored(rng):
    """cat=b drives the outcome up; fix=z pulls subgroups back to the
    mean (a corrective item); noise attr is irrelevant."""
    n = 5000
    cat = rng.choice(["a", "b"], n)
    fix = rng.choice(["z", "w"], n)
    noise = rng.choice(["u", "v"], n)
    p = np.where(cat == "b", 0.6, 0.1)
    p = np.where(fix == "z", 0.35, p)  # z flattens everything to ~mean
    o = (rng.uniform(size=n) < p).astype(float)
    table = Table({"cat": cat, "fix": fix, "noise": noise})
    result = DivExplorer(0.05).explore(table, o)
    return table, o, result


class TestGlobalShapley:
    def test_driver_item_ranks_first(self, explored):
        _table, _o, result = explored
        phi = global_shapley_values(result)
        best = max(phi.items(), key=lambda kv: kv[1])
        assert best[0] == CategoricalItem("cat", "b")

    def test_noise_items_near_zero(self, explored):
        _table, _o, result = explored
        phi = global_shapley_values(result)
        driver = phi[CategoricalItem("cat", "b")]
        for value in ("u", "v"):
            assert abs(phi[CategoricalItem("noise", value)]) < 0.2 * driver

    def test_singletons_equal_item_divergence(self, explored):
        """With only singleton results, global value = item divergence."""
        _table, _o, result = explored
        singles = result.filtered(lambda r: r.length == 1)
        phi = global_shapley_values(singles)
        for r in singles:
            (item,) = r.itemset
            assert phi[item] == pytest.approx(r.divergence)

    def test_empty_results(self):
        from repro.core.divergence import OutcomeStats
        from repro.core.results import ResultSet

        assert global_shapley_values(ResultSet([], OutcomeStats.empty())) == {}


class TestCorrectiveItems:
    def test_flattening_item_is_corrective(self, explored):
        _table, _o, result = explored
        target = Itemset([CategoricalItem("cat", "b")])
        corrections = corrective_items(result, target)
        assert corrections, "expected at least one corrective item"
        top_item, top_gain = corrections[0]
        assert top_item == CategoricalItem("fix", "z")
        assert top_gain > 0.05

    def test_amplifying_items_excluded(self, explored):
        _table, _o, result = explored
        target = Itemset([CategoricalItem("fix", "w")])
        corrections = dict(corrective_items(result, target))
        # cat=b amplifies divergence on top of fix=w; not corrective.
        assert CategoricalItem("cat", "b") not in corrections

    def test_unexplored_itemset_raises(self, explored):
        _table, _o, result = explored
        with pytest.raises(KeyError):
            corrective_items(
                result, Itemset([CategoricalItem("cat", "nope")])
            )

    def test_corrections_sorted_descending(self, explored):
        _table, _o, result = explored
        target = Itemset([CategoricalItem("cat", "b")])
        gains = [g for _item, g in corrective_items(result, target)]
        assert gains == sorted(gains, reverse=True)
