"""The PR 1 legacy-kwarg shims, swept across every constructor.

Each explorer/baseline accepts the historical spellings ``support=``,
``st=`` and ``max_level=``; all must emit a ``DeprecationWarning`` and
land on the canonical :class:`ExploreConfig` field, while the canonical
spellings stay silent. reprolint's RPL011 enforces the *implementation*
shape (no silent legacy pops); this test pins the observable behaviour.
"""

from __future__ import annotations

import warnings

import pytest

from repro.baselines import ErrorTree, SliceFinder, SliceLine
from repro.core.config import LEGACY_ALIASES
from repro.core.explorer import DivExplorer
from repro.core.hexplorer import HDivExplorer

ALL_CLASSES = [HDivExplorer, DivExplorer, SliceFinder, SliceLine, ErrorTree]

LEGACY_CASES = [
    ("support", "min_support", 0.07),
    ("st", "tree_support", 0.21),
    ("max_level", "max_length", 3),
]


@pytest.mark.parametrize("cls", ALL_CLASSES, ids=lambda c: c.__name__)
@pytest.mark.parametrize(
    "legacy,canonical,value", LEGACY_CASES, ids=[c[0] for c in LEGACY_CASES]
)
def test_legacy_kwarg_warns_and_maps(cls, legacy, canonical, value):
    with pytest.warns(
        DeprecationWarning, match=f"keyword {legacy!r} is deprecated"
    ):
        obj = cls(**{legacy: value})
    assert getattr(obj.config, canonical) == value


@pytest.mark.parametrize("cls", ALL_CLASSES, ids=lambda c: c.__name__)
@pytest.mark.parametrize(
    "legacy,canonical,value", LEGACY_CASES, ids=[c[0] for c in LEGACY_CASES]
)
def test_canonical_spelling_is_silent(cls, legacy, canonical, value):
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        obj = cls(**{canonical: value})
    assert getattr(obj.config, canonical) == value


@pytest.mark.parametrize("cls", ALL_CLASSES, ids=lambda c: c.__name__)
def test_canonical_beats_legacy_alias(cls):
    with pytest.warns(DeprecationWarning):
        obj = cls(support=0.03, min_support=0.09)
    assert obj.config.min_support == 0.09


def test_case_table_covers_every_alias():
    assert {c[0] for c in LEGACY_CASES} == set(LEGACY_ALIASES)
    assert {c[1] for c in LEGACY_CASES} == set(LEGACY_ALIASES.values())
