"""Tests for ``repro.obs`` — spans, metrics, and telemetry determinism.

Covers the collector mechanics (nesting, null-object behaviour,
pickling), the cross-backend counter-parity contract, the
``n_jobs``-invariance of merged worker counters, tracing-on/off
result identity, and the three JSON payload schemas.
"""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest

from repro.core.config import ExploreConfig
from repro.core.explorer import DivExplorer
from repro.core.hexplorer import HDivExplorer
from repro.core.items import CategoricalItem, IntervalItem
from repro.core.mining.transactions import EncodedUniverse, mine
from repro.core.report import exploration_report
from repro.obs import (
    BENCH_SCHEMA,
    METRICS_SCHEMA,
    NULL_OBS,
    TRACE_SCHEMA,
    NullCollector,
    ObsCollector,
    bench_payload,
    cache_hit_rate,
    config_fingerprint,
    metrics_payload,
    obs_summary,
    render_text,
    resolve_obs,
    trace_payload,
    trim_spans,
    validate_bench_payload,
    write_bench_json,
    write_metrics,
    write_trace,
)
from repro.tabular import Table


@pytest.fixture
def universe(rng):
    """A 500-row universe: two discretized attrs + one categorical."""
    n = 500
    x = rng.uniform(0, 10, n)
    y = rng.uniform(-3, 3, n)
    cat = rng.choice(["a", "b", "c", "d"], n)
    o = ((x > 6) & (y > 0)).astype(float)
    table = Table({"x": x, "y": y, "cat": cat})
    items = [
        IntervalItem("x", high=3),
        IntervalItem("x", 3, 6),
        IntervalItem("x", low=6),
        IntervalItem("y", high=0),
        IntervalItem("y", low=0),
        CategoricalItem("cat", "a"),
        CategoricalItem("cat", "b"),
        CategoricalItem("cat", "c"),
        CategoricalItem("cat", "d"),
    ]
    return EncodedUniverse.from_table(table, items, o)


def mined_signature(mined):
    return sorted(
        (tuple(sorted(m.ids)), m.stats.count, m.stats.n, m.stats.total)
        for m in mined
    )


class TestSpans:
    def test_nesting_builds_a_tree(self):
        obs = ObsCollector()
        with obs.span("outer"):
            with obs.span("inner.a"):
                pass
            with obs.span("inner.b"):
                pass
        assert [r.name for r in obs.roots] == ["outer"]
        assert [c.name for c in obs.roots[0].children] == ["inner.a", "inner.b"]
        assert obs.current_span() is None

    def test_elapsed_and_attrs(self):
        obs = ObsCollector()
        with obs.span("phase", n=3) as span:
            span.set(extra="x")
        assert span.elapsed_seconds > 0.0
        assert span.attrs == {"n": 3, "extra": "x"}
        d = span.to_dict()
        assert d["name"] == "phase" and d["attrs"]["extra"] == "x"

    def test_exception_still_closes_span(self):
        obs = ObsCollector()
        with pytest.raises(RuntimeError):
            with obs.span("doomed"):
                raise RuntimeError("boom")
        assert [r.name for r in obs.roots] == ["doomed"]
        assert obs.current_span() is None

    def test_walk_preorder(self):
        obs = ObsCollector()
        with obs.span("a"):
            with obs.span("b"):
                with obs.span("c"):
                    pass
        assert [s.name for s in obs.roots[0].walk()] == ["a", "b", "c"]

    def test_phase_seconds_accumulates_repeats(self):
        obs = ObsCollector()
        for _ in range(2):
            with obs.span("mine"):
                with obs.span("bitset"):
                    pass
        phases = obs.phase_seconds()
        assert set(phases) == {"mine", "mine.bitset"}
        assert phases["mine"] >= phases["mine.bitset"] > 0.0


class TestCollectorMetrics:
    def test_count_gauge_counter(self):
        obs = ObsCollector()
        obs.count("c")
        obs.count("c", 4)
        obs.gauge("g", 2.5)
        obs.gauge("g", 3.5)
        assert obs.counter("c") == 5
        assert obs.counter("missing") == 0
        assert obs.gauges["g"] == 3.5

    def test_merge_counters_is_additive(self):
        obs = ObsCollector()
        obs.count("a", 2)
        obs.merge_counters({"a": 3, "b": 7})
        assert obs.counters == {"a": 5, "b": 7}

    def test_metrics_dict_sorted(self):
        obs = ObsCollector()
        for name in ("zebra", "alpha", "mid"):
            obs.count(name)
        assert list(obs.metrics_dict()["counters"]) == ["alpha", "mid", "zebra"]


class TestNullCollector:
    def test_disabled_and_inert(self):
        assert NULL_OBS.enabled is False
        with NULL_OBS.span("x", a=1) as span:
            span.set(b=2)
        assert span.elapsed_seconds == 0.0
        assert span.attrs == {}
        NULL_OBS.count("c", 5)
        NULL_OBS.gauge("g", 1.0)
        assert NULL_OBS.counter("c") == 0
        assert NULL_OBS.metrics_dict() == {"counters": {}, "gauges": {}}
        assert NULL_OBS.trace_dict() == []
        assert NULL_OBS.phase_seconds() == {}

    def test_pickle_round_trips_to_singleton(self):
        clone = pickle.loads(pickle.dumps(NULL_OBS))
        assert clone is NULL_OBS
        assert pickle.loads(pickle.dumps(NullCollector())) is NULL_OBS

    def test_resolve_obs(self):
        assert resolve_obs(None) is NULL_OBS
        obs = ObsCollector()
        assert resolve_obs(obs) is obs


class TestConfigIntegration:
    def test_obs_does_not_affect_equality_or_hash(self):
        plain = ExploreConfig()
        instrumented = ExploreConfig(obs=ObsCollector())
        assert plain == instrumented
        assert hash(plain) == hash(instrumented)

    def test_none_normalized_to_null(self):
        assert ExploreConfig(obs=None).obs is NULL_OBS

    def test_fingerprint_stable_and_obs_free(self):
        a = ExploreConfig(min_support=0.07)
        b = ExploreConfig(min_support=0.07, obs=ObsCollector())
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != ExploreConfig(min_support=0.08).fingerprint()
        assert "obs" not in a.to_dict()

    def test_explorers_accept_obs_kwarg(self):
        obs = ObsCollector()
        assert DivExplorer(obs=obs).obs is obs
        assert HDivExplorer(obs=obs).obs is obs


class TestCounterParity:
    """The cross-backend metric contract (see docs/OBSERVABILITY.md)."""

    CENTRAL = ("mining.frequent_itemsets",)

    def collect(self, universe, backend, n_jobs=1):
        obs = ObsCollector()
        mined = mine(universe, 0.05, backend, n_jobs=n_jobs, obs=obs)
        return mined, dict(obs.counters)

    def test_central_counters_identical_across_backends(self, universe):
        per_backend = {
            b: self.collect(universe, b)[1]
            for b in ("apriori", "fpgrowth", "eclat", "bitset")
        }
        reference = per_backend["bitset"]
        level_keys = [
            k for k in reference if k.startswith("mining.frequent.level_")
        ]
        assert level_keys, "level counters missing"
        for backend, counters in per_backend.items():
            for key in (*self.CENTRAL, *level_keys):
                assert counters[key] == reference[key], (backend, key)

    def test_eclat_and_bitset_fully_identical(self, universe):
        mined_e, counters_e = self.collect(universe, "eclat")
        mined_b, counters_b = self.collect(universe, "bitset")
        assert counters_e == counters_b
        assert mined_signature(mined_e) == mined_signature(mined_b)
        assert counters_e["mining.candidates"] > 0
        assert counters_e["mining.support_pruned"] > 0
        assert counters_e["mining.rows_scanned"] > 0

    @pytest.mark.parametrize("n_jobs", [2, 4])
    def test_parallel_merge_equals_serial(self, universe, n_jobs):
        mined_serial, serial = self.collect(universe, "bitset")
        mined_par, par = self.collect(universe, "bitset", n_jobs=n_jobs)
        assert par == serial
        assert mined_signature(mined_par) == mined_signature(mined_serial)


class TestTracingDeterminism:
    def explore(self, pocket_data, obs, hierarchical):
        table, errors = pocket_data
        config = ExploreConfig(min_support=0.05, obs=obs)
        if hierarchical:
            return HDivExplorer(config).explore(table, errors)
        from repro.core.discretize import TreeDiscretizer

        trees = TreeDiscretizer(0.1).fit_all(table, errors)
        items = {a: t.leaf_items() for a, t in trees.items()}
        return DivExplorer(config).explore(
            table, errors, continuous_items=items
        )

    @staticmethod
    def rows(result):
        return [
            (
                str(r.itemset), r.count, r.divergence,
                None if np.isnan(r.t) else r.t,
            )
            for r in result
        ]

    @pytest.mark.parametrize("hierarchical", [False, True])
    def test_results_identical_with_and_without_obs(
        self, pocket_data, hierarchical
    ):
        baseline = self.explore(pocket_data, None, hierarchical)
        traced = self.explore(pocket_data, ObsCollector(), hierarchical)
        assert self.rows(baseline) == self.rows(traced)

    def test_hexplorer_span_tree_and_summary(self, pocket_data):
        table, errors = pocket_data
        obs = ObsCollector()
        result = HDivExplorer(
            ExploreConfig(min_support=0.05, backend="bitset", obs=obs)
        ).explore(table, errors)
        names = [r.name for r in obs.roots]
        assert names == ["discretize", "encode", "mine"]
        mine_span = obs.roots[-1]
        assert [c.name for c in mine_span.children] == ["bitset"]
        assert obs.counter("discretize.splits_tried") > 0
        summary = result.summary()
        assert "obs" in summary
        assert summary["obs"]["frequent_itemsets"] == len(result)
        assert result.summary()["obs"]["phases"]["mine"] > 0.0

    def test_summary_has_no_obs_section_when_disabled(self, pocket_data):
        table, errors = pocket_data
        result = DivExplorer(ExploreConfig(min_support=0.1)).explore(
            table, errors
        )
        assert "obs" not in result.summary()

    def test_back_compat_timing_attributes(self, pocket_data):
        table, errors = pocket_data
        explorer = HDivExplorer(ExploreConfig(min_support=0.1))
        result = explorer.explore(table, errors)
        assert explorer.last_discretization_seconds_ > 0.0
        assert result.elapsed_seconds > 0.0


class TestPayloads:
    def make_obs(self):
        obs = ObsCollector()
        with obs.span("mine", polarity=False):
            with obs.span("bitset"):
                obs.count("mining.candidates", 10)
                obs.count("cover_cache.hits", 3)
                obs.count("cover_cache.misses", 1)
        obs.gauge("universe.items", 9)
        return obs

    def test_trace_and_metrics_payloads(self, tmp_path):
        obs = self.make_obs()
        trace = trace_payload(obs)
        assert trace["schema"] == TRACE_SCHEMA
        assert trace["spans"][0]["children"][0]["name"] == "bitset"
        metrics = metrics_payload(obs)
        assert metrics["schema"] == METRICS_SCHEMA
        assert metrics["counters"]["mining.candidates"] == 10
        write_trace(obs, tmp_path / "t.json")
        write_metrics(obs, tmp_path / "m.json")
        assert json.loads((tmp_path / "t.json").read_text()) == trace
        assert json.loads((tmp_path / "m.json").read_text()) == metrics

    def test_cache_hit_rate(self):
        assert cache_hit_rate(ObsCollector()) is None
        assert cache_hit_rate(self.make_obs()) == pytest.approx(0.75)

    def test_obs_summary_shape(self):
        s = obs_summary(self.make_obs())
        assert set(s) == {
            "phases", "cache_hit_rate", "candidates", "frequent_itemsets",
            "pruning",
        }
        assert s["candidates"] == 10

    def test_render_text_lists_spans_and_counters(self):
        text = render_text(self.make_obs())
        assert "mine" in text and "bitset" in text
        assert "mining.candidates" in text

    def test_bench_payload_valid_and_fingerprinted(self, tmp_path):
        obs = self.make_obs()
        config = {"dataset": "compas", "support": 0.05}
        payload = write_bench_json(
            tmp_path / "BENCH_x.json", "x", obs=obs, config=config,
            extra={"note": 1},
        )
        assert payload["schema"] == BENCH_SCHEMA
        assert payload["config_fingerprint"] == config_fingerprint(config)
        assert validate_bench_payload(payload) == []
        reread = json.loads((tmp_path / "BENCH_x.json").read_text())
        assert validate_bench_payload(reread) == []

    def test_validation_catches_corruption(self):
        payload = bench_payload("x", obs=self.make_obs(), config={"a": 1})
        payload["config"]["a"] = 2
        errors = validate_bench_payload(payload)
        assert any("fingerprint" in e for e in errors)
        payload = bench_payload("x", obs=self.make_obs())
        payload["counters"] = {"bad": 1.5}
        assert any("integer" in e for e in validate_bench_payload(payload))

    def test_config_fingerprint_key_order_invariant(self):
        assert config_fingerprint({"a": 1, "b": 2}) == config_fingerprint(
            {"b": 2, "a": 1}
        )
        assert config_fingerprint({"a": 1}) != config_fingerprint({"a": 2})


class TestVerboseReport:
    def test_verbose_appends_observability_section(self, pocket_data):
        table, errors = pocket_data
        obs = ObsCollector()
        result = HDivExplorer(
            ExploreConfig(min_support=0.1, obs=obs)
        ).explore(table, errors)
        plain = exploration_report(result)
        verbose = exploration_report(result, verbose=True)
        assert "observability:" not in plain
        assert "observability:" in verbose
        assert "phase wall times:" in verbose

    def test_verbose_without_collector_says_disabled(self, pocket_data):
        table, errors = pocket_data
        result = DivExplorer(ExploreConfig(min_support=0.1)).explore(
            table, errors
        )
        text = exploration_report(result, verbose=True)
        assert "disabled" in text


class TestMergeCountersEdgeCases:
    """Worker-dict merge semantics the parallel fan-out relies on."""

    def test_nested_dotted_keys_merge_independently(self):
        obs = ObsCollector()
        obs.count("mining.frequent.level_1", 2)
        obs.merge_counters({
            "mining.frequent.level_1": 3,
            "mining.frequent.level_2": 5,
            "mining.frequent.level_10": 1,
        })
        assert obs.counters["mining.frequent.level_1"] == 5
        assert obs.counters["mining.frequent.level_2"] == 5
        assert obs.counters["mining.frequent.level_10"] == 1

    def test_zero_count_entries_survive_the_merge(self):
        obs = ObsCollector()
        obs.merge_counters({"mining.support_pruned": 0})
        assert obs.counters == {"mining.support_pruned": 0}
        assert obs.counter("mining.support_pruned") == 0
        obs.merge_counters({"mining.support_pruned": 0})
        assert obs.counters["mining.support_pruned"] == 0

    def test_disjoint_worker_dicts_concatenate(self):
        obs = ObsCollector()
        obs.merge_counters({"a.x": 1})
        obs.merge_counters({"b.y": 2})
        obs.merge_counters({})
        assert obs.counters == {"a.x": 1, "b.y": 2}

    def test_merge_order_invariant(self):
        shards = [{"k": 1, "a": 2}, {"k": 3}, {"b": 4, "k": 0}]
        forward, backward = ObsCollector(), ObsCollector()
        for d in shards:
            forward.merge_counters(d)
        for d in reversed(shards):
            backward.merge_counters(d)
        assert forward.counters == backward.counters


class TestSpanTreesUnderExceptions:
    def test_deep_raise_closes_every_open_span(self):
        obs = ObsCollector()
        with pytest.raises(ValueError):
            with obs.span("outer"):
                with obs.span("middle"):
                    with obs.span("inner"):
                        raise ValueError("deep boom")
        assert obs.current_span() is None
        (root,) = obs.roots
        assert [s.name for s in root.walk()] == ["outer", "middle", "inner"]
        assert all(s.elapsed_seconds >= 0.0 for s in root.walk())

    def test_partial_tree_serializes_after_exception(self):
        obs = ObsCollector()
        with obs.span("survivor"):
            pass
        with pytest.raises(RuntimeError):
            with obs.span("doomed"):
                with obs.span("child"):
                    raise RuntimeError("boom")
        trace = trace_payload(obs)
        assert [s["name"] for s in trace["spans"]] == ["survivor", "doomed"]
        payload = bench_payload("x", obs=obs, config={})
        assert validate_bench_payload(payload) == []
        assert set(obs.phase_seconds()) == {
            "survivor", "doomed", "doomed.child",
        }

    def test_sibling_span_can_open_after_exception(self):
        obs = ObsCollector()
        with obs.span("root"):
            try:
                with obs.span("bad"):
                    raise KeyError("x")
            except KeyError:
                pass
            with obs.span("good"):
                pass
        (root,) = obs.roots
        assert [c.name for c in root.children] == ["bad", "good"]


class TestTrimSpans:
    def deep_obs(self):
        obs = ObsCollector()
        with obs.span("a"):
            with obs.span("b"):
                with obs.span("c"):
                    with obs.span("d"):
                        pass
                with obs.span("c2"):
                    pass
        return obs

    def test_depth_one_keeps_roots_and_accounts_for_the_rest(self):
        obs = self.deep_obs()
        trimmed = trim_spans(obs.trace_dict(), 1)
        (root,) = trimmed
        assert root["name"] == "a"
        assert "children" not in root
        assert root["children_dropped"] == 4  # b, c, c2, d
        assert root["children_seconds"] == pytest.approx(
            obs.roots[0].children[0].elapsed_seconds
        )

    def test_depth_two_trims_grandchildren(self):
        trimmed = trim_spans(self.deep_obs().trace_dict(), 2)
        b = trimmed[0]["children"][0]
        assert b["name"] == "b"
        assert "children" not in b
        assert b["children_dropped"] == 3  # c, d, c2

    def test_deep_enough_depth_is_identity(self):
        spans = self.deep_obs().trace_dict()
        assert trim_spans(spans, 10) == spans

    def test_rejects_nonpositive_depth(self):
        with pytest.raises(ValueError):
            trim_spans([], 0)
        # Depth 0 is rejected before any span is touched — a non-empty
        # forest raises identically instead of returning roots-only.
        with pytest.raises(ValueError):
            trim_spans(self.deep_obs().trace_dict(), 0)
        with pytest.raises(ValueError):
            trim_spans([], -3)

    def test_empty_forest_is_preserved(self):
        assert trim_spans([], 1) == []
        assert trim_spans([], 100) == []

    def test_children_seconds_when_all_children_dropped(self):
        obs = ObsCollector()
        with obs.span("root"):
            with obs.span("left"):
                pass
            with obs.span("right"):
                pass
        (root,) = trim_spans(obs.trace_dict(), 1)
        children = obs.roots[0].children
        assert root["children_dropped"] == 2
        # children_seconds sums *all* direct children when every one of
        # them was dropped — not just the first.
        assert root["children_seconds"] == pytest.approx(
            sum(c.elapsed_seconds for c in children)
        )
        assert "children" not in root

    def test_bench_payload_records_depth_and_validates(self):
        obs = self.deep_obs()
        payload = bench_payload("x", obs=obs, config={}, max_span_depth=2)
        assert payload["max_span_depth"] == 2
        assert validate_bench_payload(payload) == []
        # Trimming only drops trace detail, never phase totals.
        assert set(payload["phases"]) == {
            "a", "a.b", "a.b.c", "a.b.c.d", "a.b.c2",
        }


class TestMemoryProfiling:
    def mined_with(self, universe, profile, n_jobs=1):
        obs = ObsCollector(profile_memory=profile)
        try:
            with obs.span("mine"):
                mined = mine(universe, 0.05, "bitset", n_jobs=n_jobs, obs=obs)
        finally:
            obs.stop_memory_profiling()
        return mined, obs

    def test_results_identical_with_profiling_on(self, universe):
        mined_off, _ = self.mined_with(universe, False)
        mined_on, obs = self.mined_with(universe, True)
        assert mined_signature(mined_on) == mined_signature(mined_off)
        assert obs.profile_memory is False  # stopped in mined_with
        assert obs.mem_peaks  # but the peaks survive the stop
        assert all(
            isinstance(v, int) and v >= 0 for v in obs.mem_peaks.values()
        )

    def test_peaks_recorded_per_span_path(self, universe):
        _, obs = self.mined_with(universe, True)
        assert "mine" in obs.mem_peaks
        assert "mine.bitset" in obs.mem_peaks
        # A parent's peak is at least its child's (high-water nesting).
        assert obs.mem_peaks["mine"] >= obs.mem_peaks["mine.bitset"]

    def test_span_attrs_carry_peak_bytes(self, universe):
        _, obs = self.mined_with(universe, True)
        (root,) = obs.roots
        assert root.attrs["mem_peak_bytes"] >= 0
        assert all("mem_peak_bytes" in s.attrs for s in root.walk())

    def test_rss_gauge_recorded_at_root_close(self, universe):
        _, obs = self.mined_with(universe, True)
        rss = obs.gauges.get("mem.rss_max_kb")
        if rss is not None:  # resource module present (POSIX)
            assert rss > 0

    @pytest.mark.parametrize("n_jobs", [1, 4])
    def test_parallel_runs_merge_worker_peaks(self, universe, n_jobs):
        mined, obs = self.mined_with(universe, True, n_jobs=n_jobs)
        serial_mined, _ = self.mined_with(universe, False)
        assert mined_signature(mined) == mined_signature(serial_mined)
        assert obs.mem_peaks["mine"] >= 0
        if n_jobs > 1:
            # Worker shards report their own span path, max-merged in.
            assert "mine.shard" in obs.mem_peaks

    def test_merge_peaks_takes_the_max(self):
        obs = ObsCollector()
        obs.record_peak("p", 100)
        obs.merge_peaks({"p": 70, "q": 5})
        obs.merge_peaks({"p": 300})
        assert obs.mem_peaks == {"p": 300, "q": 5}

    def test_null_collector_is_inert(self):
        assert NULL_OBS.profile_memory is False
        assert NULL_OBS.mem_peaks == {}
        NULL_OBS.enable_memory_profiling()
        NULL_OBS.record_peak("x", 10)
        NULL_OBS.merge_peaks({"x": 10})
        NULL_OBS.stop_memory_profiling()
        assert NULL_OBS.mem_peaks == {}
        assert NULL_OBS.profile_memory is False

    def test_config_enables_profiling_on_the_collector(self):
        obs = ObsCollector()
        try:
            config = ExploreConfig(obs=obs, profile_memory=True)
            assert obs.profile_memory is True
            assert "profile_memory" not in config.to_dict()
            assert config.fingerprint() == ExploreConfig().fingerprint()
        finally:
            obs.stop_memory_profiling()

    def test_bench_payload_and_summary_carry_mem_peaks(self, universe):
        _, obs = self.mined_with(universe, True)
        payload = bench_payload("x", obs=obs, config={})
        assert validate_bench_payload(payload) == []
        assert payload["mem_peaks"] == {
            k: obs.mem_peaks[k] for k in sorted(obs.mem_peaks)
        }
        summary = obs_summary(obs)
        assert summary["mem_peaks"] == payload["mem_peaks"]
        assert "mem peaks:" in render_text(obs)

    def test_unprofiled_payload_omits_mem_sections(self):
        obs = ObsCollector()
        with obs.span("x"):
            pass
        payload = bench_payload("x", obs=obs, config={})
        assert "mem_peaks" not in payload
        assert "mem_peaks" not in obs_summary(obs)
