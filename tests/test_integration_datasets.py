"""End-to-end smoke tests: every dataset through both explorers.

Uses small generator sizes and high supports so the whole module stays
fast while still exercising dataset → outcome → discretization →
mining → ranking for each dataset family.
"""

import numpy as np
import pytest

from repro.core.discretize import TreeDiscretizer
from repro.core.explorer import DivExplorer
from repro.core.hexplorer import HDivExplorer
from repro.datasets import load_dataset

SMALL = {
    "adult": 2_000,
    "bank": 2_000,
    "compas": 2_000,
    "folktables": 3_000,
    "german": 1_000,
    "intentions": 2_000,
    "synthetic-peak": 3_000,
    "wine": 2_000,
}


@pytest.mark.parametrize("name", sorted(SMALL))
def test_hierarchical_pipeline(name):
    ds = load_dataset(name, n_rows=SMALL[name])
    outcomes = ds.outcome().values(ds.table)
    explorer = HDivExplorer(min_support=0.15, tree_support=0.25)
    result = explorer.explore(
        ds.features(), outcomes, hierarchies=ds.hierarchies
    )
    assert len(result) > 0
    assert all(0.15 <= r.support <= 1.0 for r in result)
    assert np.isfinite(result.global_mean)
    # Discretized hierarchies satisfy Definition 4.1 on the data.
    explorer.last_hierarchies_.validate(ds.features())


@pytest.mark.parametrize("name", sorted(SMALL))
def test_base_vs_hierarchical_consistency(name):
    ds = load_dataset(name, n_rows=SMALL[name])
    outcomes = ds.outcome().values(ds.table)
    features = ds.features()
    trees = TreeDiscretizer(0.25).fit_all(features, outcomes)
    base = DivExplorer(0.15).explore(
        features,
        outcomes,
        continuous_items={a: t.leaf_items() for a, t in trees.items()},
    )
    hier = HDivExplorer(0.15, tree_support=0.25).explore(
        features, outcomes
    )
    assert hier.max_divergence() >= base.max_divergence() - 1e-12


def test_folktables_hierarchy_items_reachable():
    """Generalized items from predefined taxonomies appear in results."""
    ds = load_dataset("folktables", n_rows=4_000)
    outcomes = ds.outcome().values(ds.table)
    result = HDivExplorer(0.1, tree_support=0.25).explore(
        ds.features(), outcomes, hierarchies=ds.hierarchies
    )
    occp_labels = {
        item.label
        for r in result
        for item in r.itemset
        if item.attribute == "OCCP"
    }
    supercategories = {"MGR", "MED", "ENG", "EDU", "SAL", "OFF", "SVC", "TRN"}
    assert occp_labels & supercategories, (
        "taxonomy supercategories should be frequent items"
    )
