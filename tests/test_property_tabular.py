"""Property-based tests for the tabular substrate."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.tabular import Table, read_csv, write_csv

cell_text = st.text(
    alphabet=st.characters(
        whitelist_categories=("L", "N", "P", "Z"), max_codepoint=0x2000
    ),
    min_size=0,
    max_size=12,
).filter(lambda s: s == s.strip() and "\r" not in s and "\n" not in s)


@st.composite
def random_table(draw):
    n_rows = draw(st.integers(1, 25))
    n_numeric = draw(st.integers(0, 3))
    n_cat = draw(st.integers(0, 3))
    data = {}
    for i in range(n_numeric):
        data[f"n{i}"] = draw(
            st.lists(
                st.one_of(
                    st.floats(-1e9, 1e9, allow_nan=False), st.none()
                ),
                min_size=n_rows,
                max_size=n_rows,
            )
        )
    for i in range(n_cat):
        data[f"c{i}"] = draw(
            st.lists(
                st.one_of(
                    cell_text.filter(lambda s: s != ""), st.none()
                ),
                min_size=n_rows,
                max_size=n_rows,
            )
        )
    if not data:
        data["n0"] = [1.0] * n_rows
    return Table(data)


@settings(max_examples=40, deadline=None)
@given(table=random_table(), seed=st.integers(0, 2**16))
def test_select_take_agree(table, seed):
    rng = np.random.default_rng(seed)
    mask = rng.uniform(size=table.n_rows) < 0.5
    by_mask = table.select(mask)
    by_take = table.take(np.nonzero(mask)[0])
    assert by_mask.equals(by_take)


@settings(max_examples=40, deadline=None)
@given(table=random_table())
def test_shuffle_preserves_multiset(table):
    rng = np.random.default_rng(0)
    shuffled = table.shuffle(rng)
    for name in table.column_names:
        original = table[name].to_list()
        after = shuffled[name].to_list()
        assert sorted(map(repr, original)) == sorted(map(repr, after))


@settings(max_examples=40, deadline=None)
@given(table=random_table())
def test_project_roundtrip(table):
    names = list(reversed(table.column_names))
    projected = table.project(names)
    assert projected.column_names == names
    assert projected.project(table.column_names).equals(table)


def _csv_safe(table: Table) -> bool:
    """Values whose string form survives CSV (no float formatting loss)."""
    for name in table.continuous_names:
        for v in table[name].to_list():
            if v is not None and float(str(v)) != v:
                return False
    return True


@settings(max_examples=40, deadline=None)
@given(table=random_table())
def test_csv_roundtrip_structure(table, tmp_path_factory):
    path = tmp_path_factory.mktemp("prop") / "t.csv"
    write_csv(table, path)
    back = read_csv(path)
    assert back.n_rows == table.n_rows
    assert back.column_names == table.column_names
    # Continuous columns stay continuous unless every value is missing
    # (then kind inference has nothing to go on).
    for name in table.continuous_names:
        values = table[name].to_list()
        if any(v is not None for v in values):
            assert name in back.continuous_names
            restored = back[name].to_list()
            for a, b in zip(values, restored):
                if a is None:
                    assert b is None
                else:
                    assert b == float(str(a))
