PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint lint-json lint-baseline arch arch-gate arch-lock verify bench bench-smoke obs-smoke perf-gate perf-report bench-engine sweep-bench bundle-gate cpuprof-gate

test:
	$(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) -m repro.devtools.lint src benchmarks --jobs 0

arch:
	$(PYTHON) -m repro.devtools.arch check

arch-lock:
	$(PYTHON) -m repro.devtools.arch lock

lint-json:
	$(PYTHON) -m repro.devtools.lint src benchmarks \
		--format json --output benchmark_results/lint.json

lint-baseline:
	$(PYTHON) -m repro.devtools.lint src benchmarks --write-baseline

verify: lint arch-gate test bench-smoke obs-smoke bundle-gate cpuprof-gate perf-gate

bench-smoke:
	$(PYTHON) benchmarks/smoke.py

obs-smoke:
	$(PYTHON) benchmarks/smoke.py --obs

perf-gate:
	$(PYTHON) benchmarks/smoke.py --perf-gate

arch-gate:
	$(PYTHON) benchmarks/smoke.py --arch

bundle-gate:
	$(PYTHON) benchmarks/smoke.py --bundle

cpuprof-gate:
	$(PYTHON) benchmarks/smoke.py --cpuprof

perf-report:
	$(PYTHON) -m repro.obs.perfdb --history benchmark_results/history report

bench-engine:
	$(PYTHON) -m pytest benchmarks/bench_bitset_engine.py -q

sweep-bench:
	$(PYTHON) -m pytest benchmarks/bench_sweep.py -q

bench:
	$(PYTHON) -m pytest benchmarks -q
