PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-smoke bench-engine

test:
	$(PYTHON) -m pytest -x -q

bench-smoke:
	$(PYTHON) benchmarks/smoke.py

bench-engine:
	$(PYTHON) -m pytest benchmarks/bench_bitset_engine.py -q

bench:
	$(PYTHON) -m pytest benchmarks -q
