"""Income analysis with categorical hierarchies (folktables-like data).

Shows the other half of the hierarchy story: *predefined* hierarchies
on categorical attributes. Occupations roll up into supercategories
(MGR-Financial → MGR) and birthplaces into a geography (NA/US/CA → US →
NA). Individual occupation codes are too rare to pass the support
threshold, but their supercategory is not — so only the generalized
exploration can report, e.g., that older male managers out-earn the
dataset by a wide margin.

The outcome here is numeric (income itself), so only the
divergence-based tree criterion applies.

Run:  python examples/income_analysis.py
"""

import numpy as np

from repro import DivExplorer, HDivExplorer
from repro.core.discretize import TreeDiscretizer
from repro.datasets import folktables


def main() -> None:
    ds = folktables(n_rows=30_000)
    features = ds.features()
    income = ds.outcome().values(ds.table)
    print(f"{ds.name}: {ds.table.n_rows} workers")
    print(f"mean income: ${np.nanmean(income):,.0f}\n")

    print("occupation taxonomy (predefined hierarchy):")
    print(ds.hierarchies["OCCP"].render())
    print()

    support = 0.05

    hier = HDivExplorer(
        min_support=support, tree_support=0.1, criterion="divergence"
    )
    result = hier.explore(features, income, hierarchies=ds.hierarchies)
    print(f"[H-DivExplorer]  top income-divergent subgroups (s={support}):")
    for r in result.top_k(5, by="divergence"):
        print(
            f"  {r.itemset!s}  sup={r.support:.3f}  "
            f"d=+${r.divergence:,.0f}  t={r.t:.1f}"
        )

    # Base exploration: leaf occupations only.
    trees = TreeDiscretizer(0.1, criterion="divergence").fit_all(
        features, income
    )
    leaves = {a: t.leaf_items() for a, t in trees.items()}
    base = DivExplorer(min_support=support).explore(
        features, income, continuous_items=leaves
    )
    print("\n[base DivExplorer]  top subgroups:")
    for r in base.top_k(3, by="divergence"):
        print(
            f"  {r.itemset!s}  sup={r.support:.3f}  d=+${r.divergence:,.0f}"
        )

    hier_best = result.top_k(1, by="divergence")[0]
    base_best = base.top_k(1, by="divergence")[0]
    print(
        f"\ngeneralized exploration reaches +${hier_best.divergence:,.0f} "
        f"vs +${base_best.divergence:,.0f} for the base — the difference "
        "is the occupation supercategory, invisible to flat items."
    )


if __name__ == "__main__":
    main()
