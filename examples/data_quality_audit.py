"""Data-quality audit: missingness subgroups, model regressions,
and finding stability.

Three production questions answered on one dirty dataset:

1. Is the model unusually wrong where data is *missing*?
   (`include_missing_items` adds A=⊥ items to the universe.)
2. Where did the new model *regress* against the old one?
   (the error-difference outcome turns A/B comparison into subgroup
   discovery.)
3. Which findings are stable under resampling, and which are
   artefacts? (bootstrap stability with a frozen item vocabulary.)

Run:  python examples/data_quality_audit.py
"""

import numpy as np

from repro import DivExplorer, HDivExplorer, Table
from repro.core.outcomes import error_difference
from repro.datasets.perturb import inject_missing
from repro.experiments.stability import bootstrap_stability


def make_data(n: int = 8_000, seed: int = 9):
    rng = np.random.default_rng(seed)
    amount = rng.lognormal(5.0, 1.0, n)
    tenure = rng.uniform(0, 120, n)
    channel = rng.choice(["web", "app", "branch"], n, p=[0.5, 0.35, 0.15])
    y = (
        (amount > 200) & (tenure < 24)
        | (rng.uniform(size=n) < 0.05)
    ).astype(int)

    # Old model: uniform 6% error. New model: better overall (4%) but
    # regresses badly on branch customers with short tenure.
    flip_old = rng.uniform(size=n) < 0.06
    pred_old = np.where(flip_old, 1 - y, y)
    regression_pocket = (channel == "branch") & (tenure < 24)
    flip_new = rng.uniform(size=n) < np.where(regression_pocket, 0.35, 0.02)
    pred_new = np.where(flip_new, 1 - y, y)

    table = Table(
        {
            "amount": amount,
            "tenure": tenure,
            "channel": channel,
            "label": [str(v) for v in y],
            "pred_old": [str(v) for v in pred_old],
            "pred_new": [str(v) for v in pred_new],
        }
    )
    # Dirty pipeline: tenure goes missing for app users, and the new
    # model errs more when it is missing.
    missing = (channel == "app") & (rng.uniform(size=n) < 0.4)
    tenure_dirty = table.continuous("tenure").values.copy()
    tenure_dirty[missing] = np.nan
    table = table.with_values("tenure", tenure_dirty)
    extra_flip = missing & (rng.uniform(size=n) < 0.3)
    pred_new = np.where(extra_flip, 1 - y, pred_new)
    table = table.with_values("pred_new", [str(v) for v in pred_new])
    return table


def main() -> None:
    table = make_data()
    features = table.project(["amount", "tenure", "channel"])
    new_err = (
        np.asarray(table["pred_new"].to_list())
        != np.asarray(table["label"].to_list())
    ).astype(float)
    print(f"rows: {table.n_rows}; new-model error rate {new_err.mean():.3f}")
    print(
        "missing tenure cells: "
        f"{int(table['tenure'].missing_mask().sum())}"
    )

    # 1. Missingness-aware exploration.
    explorer = HDivExplorer(
        min_support=0.05, tree_support=0.1, include_missing_items=True
    )
    result = explorer.explore(features, new_err)
    print("\n[1] where is the new model most wrong? (A=⊥ items enabled)")
    for r in result.top_k(3):
        print(f"  {r}")

    # 2. Regression subgroups: error(new) − error(old).
    diff = error_difference("label", "pred_new", "pred_old").values(table)
    reg = DivExplorer(min_support=0.05).explore(features, diff)
    print("\n[2] where does the new model regress against the old one?")
    for r in reg.top_k(3, by="divergence"):
        print(f"  {r}")

    # 3. Stability of the findings.
    report = bootstrap_stability(
        features, new_err,
        explorer=HDivExplorer(0.05, tree_support=0.1,
                              include_missing_items=True),
        k=3, n_runs=6, seed=1,
    )
    print("\n[3] do the top findings survive resampling?")
    print(report)


if __name__ == "__main__":
    main()
