"""Fairness audit: false-positive-rate divergence on compas-like data.

Reproduces the paper's motivating scenario (Section I): a recidivism
screening tool whose false-positive rate — the rate at which defendants
who will NOT reoffend are flagged as high risk — varies sharply across
subgroups. The audit compares three discretization strategies and
prints the Welch-t significance of each finding.

Run:  python examples/fairness_audit.py
"""

from repro import DivExplorer, HDivExplorer
from repro.datasets import compas, compas_manual_items


def main() -> None:
    ds = compas()
    outcome = ds.outcome()
    features = ds.features()
    values = outcome.values(ds.table)

    import numpy as np

    print(f"{ds.name}: {ds.table.n_rows} defendants")
    print(f"overall false-positive rate: {np.nanmean(values):.3f}\n")

    support = 0.025

    manual = DivExplorer(min_support=support).explore(
        features, values, continuous_items=compas_manual_items()
    )
    print(f"[manual discretization of prior work]  (s={support})")
    for r in manual.top_k(3, by="divergence", min_t=2.0):
        print(f"  {r}")

    hier = HDivExplorer(min_support=support, tree_support=0.1)
    result = hier.explore(features, values)
    print("\n[H-DivExplorer: divergence-aware tree hierarchies]")
    for r in result.top_k(5, by="divergence", min_t=2.0):
        print(f"  {r}")

    print("\nhierarchy discovered for '#prior' (number of prior offenses):")
    print(hier.last_hierarchies_["#prior"].render())

    best_m = manual.top_k(1, by="divergence")[0]
    best_h = result.top_k(1, by="divergence")[0]
    print(
        f"\nmanual discretization tops out at dFPR={best_m.divergence:+.3f}; "
        f"hierarchical exploration reaches dFPR={best_h.divergence:+.3f}"
    )
    print(
        "subgroups this far above the base rate are flagged for review: "
        "they are where the screening tool most over-predicts risk."
    )


if __name__ == "__main__":
    main()
