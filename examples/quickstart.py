"""Quickstart: find anomalous subgroups in a model's errors.

Builds a small tabular dataset with a hidden error pocket, runs both
the base DivExplorer and the hierarchical H-DivExplorer, and shows why
the hierarchy matters: the anomaly spans a region that base
discretization can only reach by going below the support threshold.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import DivExplorer, ExploreConfig, HDivExplorer, Table
from repro.core.discretize import TreeDiscretizer
from repro.core.outcomes import array_outcome


def make_data(n: int = 8_000, seed: int = 3) -> tuple[Table, np.ndarray]:
    """A dataset whose model errs inside a 2-D numeric pocket."""
    rng = np.random.default_rng(seed)
    age = rng.uniform(18, 80, n)
    income = rng.lognormal(10.3, 0.5, n)
    segment = rng.choice(["consumer", "smb", "enterprise"], n, p=[0.6, 0.3, 0.1])
    # The model is wrong 40% of the time for young, low-income
    # consumers; 4% elsewhere.
    pocket = (age < 30) & (income < 25_000) & (segment == "consumer")
    errors = (rng.uniform(size=n) < np.where(pocket, 0.40, 0.04)).astype(float)
    table = Table({"age": age, "income": income, "segment": segment})
    return table, errors


def main() -> None:
    table, errors = make_data()
    outcome = array_outcome(errors, name="error", boolean=True)
    print(f"dataset: {table}")
    print(f"overall error rate: {errors.mean():.3f}\n")

    # One frozen config drives every explorer; replace() derives
    # variants (e.g. backend="bitset" for the fast mining engine).
    config = ExploreConfig(min_support=0.05, tree_support=0.1)

    # Hierarchical exploration: trees discretize age and income into
    # item hierarchies, mining combines items at any granularity.
    explorer = HDivExplorer(config)
    result = explorer.explore(table, outcome)
    print("H-DivExplorer top subgroups (support >= 0.05):")
    for r in result.top_k(5):
        print(f"  {r}")

    fast = HDivExplorer(config.replace(backend="bitset")).explore(
        table, outcome
    )
    assert fast.itemsets() == result.itemsets()  # same answer, faster

    print("\nitem hierarchy discovered for 'age':")
    print(explorer.last_hierarchies_["age"].render())

    # Base exploration over the same trees' leaf items for contrast.
    discretizer = TreeDiscretizer(min_support=0.1)
    trees = discretizer.fit_all(table, outcome.values(table))
    leaves = {name: tree.leaf_items() for name, tree in trees.items()}
    base = DivExplorer(config).explore(
        table, outcome, continuous_items=leaves
    )
    print("\nbase DivExplorer (leaf items only) top subgroups:")
    for r in base.top_k(3):
        print(f"  {r}")

    print(
        f"\nmax |divergence|: hierarchical={result.max_divergence():.3f} "
        f"vs base={base.max_divergence():.3f}"
    )


if __name__ == "__main__":
    main()
