"""Full pipeline: discovery → significance → explanation → pruning.

A production-flavoured walk through the library on the folktables-like
income data:

1. discover divergent subgroups hierarchically (H-DivExplorer),
2. control the false discovery rate over the thousands of explored
   subgroups (Benjamini–Hochberg),
3. prune redundant refinements so the report is digestible,
4. explain the top finding by Shapley attribution of its items,
5. cross-check the ranking view: who is under-selected in the top
   income decile?

Run:  python examples/full_pipeline.py
"""

import numpy as np

from repro import HDivExplorer
from repro.core.lattice import redundancy_prune
from repro.core.ranking import selection_rate
from repro.core.shapley import rank_items_by_contribution
from repro.core.significance import benjamini_hochberg
from repro.datasets import folktables


def main() -> None:
    ds = folktables(n_rows=25_000)
    features = ds.features()
    income = ds.outcome().values(ds.table)
    print(f"{ds.name}: {ds.table.n_rows} workers, "
          f"mean income ${np.nanmean(income):,.0f}")

    # 1. Hierarchical discovery.
    explorer = HDivExplorer(
        min_support=0.05, tree_support=0.1, polarity=True
    )
    result = explorer.explore(features, income, hierarchies=ds.hierarchies)
    print(f"\nexplored {len(result)} subgroups "
          f"in {result.elapsed_seconds:.1f}s (polarity-pruned search)")

    # 2. FDR control across everything we looked at.
    significant = benjamini_hochberg(result, alpha=0.01)
    print(f"{len(significant)} subgroups significant at FDR 1%")

    # 3. Redundancy pruning of the ranked report.
    top = result.top_k(50, by="divergence")
    concise = redundancy_prune(top, epsilon=5_000.0)
    print("\ntop positive-divergence subgroups (redundancy-pruned):")
    for r in concise[:5]:
        print(f"  {r.itemset!s}  sup={r.support:.3f}  d=+${r.divergence:,.0f}")

    # 4. Explain the best subgroup item by item.
    best = concise[0]
    print(f"\nShapley attribution for: {best.itemset!s}")
    for item, phi in rank_items_by_contribution(features, income, best.itemset):
        print(f"  {item!s:30s} {phi:+12,.0f}")

    # 5. Ranking view: selection into the top income decile. The
    # outcome is evaluated on the full table; exploration runs over the
    # feature columns with the row-aligned outcome array.
    decile = selection_rate("income", top_fraction=0.1)
    in_top_decile = decile.values(ds.table)
    rank_explorer = HDivExplorer(min_support=0.05, tree_support=0.1)
    rank_result = rank_explorer.explore(
        features, in_top_decile, hierarchies=ds.hierarchies
    )
    print("\nmost under-selected subgroups for the top income decile:")
    for r in rank_result.top_k(3, by="neg_divergence"):
        print(f"  {r.itemset!s}  sup={r.support:.3f}  d={r.divergence:+.3f}")


if __name__ == "__main__":
    main()
