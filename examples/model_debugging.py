"""Model debugging: locate an injected error peak (synthetic-peak).

Trains nothing — the dataset ships a prediction column whose error rate
peaks around the point (0, 1, 2) in a 3-D feature space. The exercise
is to *find* that region automatically, comparing:

- base exploration on fixed leaf items,
- hierarchical exploration (H-DivExplorer),
- the Slice Finder and SliceLine baselines.

Run:  python examples/model_debugging.py
"""

import numpy as np

from repro import DivExplorer, HDivExplorer
from repro.baselines import SliceFinder, SliceLine
from repro.core.discretize import TreeDiscretizer
from repro.datasets import synthetic_peak


def main() -> None:
    ds = synthetic_peak()
    features = ds.features()
    errors = ds.outcome().values(ds.table)
    print(f"{ds.name}: {ds.table.n_rows} points, "
          f"overall error rate {np.nanmean(errors):.4f}")
    print("true anomaly centre: a=0, b=1, c=2\n")

    support = 0.05

    # Shared tree discretization (st = 0.1).
    trees = TreeDiscretizer(0.1).fit_all(features, errors)
    leaves = {a: t.leaf_items() for a, t in trees.items()}
    leaf_items = [it for items in leaves.values() for it in items]

    base = DivExplorer(min_support=support).explore(
        features, errors, continuous_items=leaves
    )
    print(f"[base DivExplorer]        best: {base.top_k(1)[0]}")

    hier = HDivExplorer(min_support=support, tree_support=0.1).explore(
        features, errors
    )
    print(f"[H-DivExplorer]           best: {hier.top_k(1)[0]}")

    sf = SliceFinder(effect_size_threshold=0.4, k=3)
    slices = sf.find(features, errors, leaf_items)
    if slices:
        s = slices[0]
        print(
            f"[Slice Finder]            best: {s.itemset}  "
            f"phi={s.effect_size:.2f}  sup={s.support:.4f}"
        )

    sl = SliceLine(alpha=0.95, k=3, min_support=support)
    found = sl.find(features, errors, leaf_items)
    if found:
        s = found[0]
        print(
            f"[SliceLine]               best: {s.itemset}  "
            f"score={s.score:.2f}  sup={s.support:.3f}"
        )

    best = hier.top_k(1)[0]
    print(
        f"\nonly the hierarchical search pins all three coordinates at "
        f"support >= {support}: {best.itemset}"
    )
    print(
        f"its error rate is {best.mean:.3f}, "
        f"{best.divergence / np.nanmean(errors):.0f}x the dataset average."
    )


if __name__ == "__main__":
    main()
